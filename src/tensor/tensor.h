// Copyright 2026 The GraphRARE Authors.
//
// Dense row-major float32 matrix. The whole library standardises on 2-D
// tensors: vectors are (n, 1) columns and scalars are (1, 1). This keeps
// every kernel and every backward pass unambiguous about shapes.

#ifndef GRAPHRARE_TENSOR_TENSOR_H_
#define GRAPHRARE_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace graphrare {
namespace tensor {

/// Dense (rows x cols) float32 matrix with value semantics.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-filled (rows x cols).
  Tensor(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0f) {
    GR_CHECK_GE(rows, 0);
    GR_CHECK_GE(cols, 0);
  }

  // -- Factories --------------------------------------------------------

  static Tensor Zeros(int64_t rows, int64_t cols) {
    return Tensor(rows, cols);
  }
  static Tensor Ones(int64_t rows, int64_t cols) {
    return Full(rows, cols, 1.0f);
  }
  static Tensor Full(int64_t rows, int64_t cols, float v) {
    Tensor t(rows, cols);
    t.Fill(v);
    return t;
  }
  /// 1x1 scalar tensor.
  static Tensor Scalar(float v) { return Full(1, 1, v); }
  /// Identity matrix.
  static Tensor Eye(int64_t n) {
    Tensor t(n, n);
    for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
    return t;
  }
  /// Takes ownership of `data` (must have rows*cols elements).
  static Tensor FromData(int64_t rows, int64_t cols, std::vector<float> data) {
    GR_CHECK_EQ(static_cast<int64_t>(data.size()), rows * cols);
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.data_ = std::move(data);
    return t;
  }
  /// Column vector (n x 1) from data.
  static Tensor ColumnVector(std::vector<float> data) {
    const int64_t n = static_cast<int64_t>(data.size());
    return FromData(n, 1, std::move(data));
  }
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(int64_t rows, int64_t cols, Rng* rng,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor Rand(int64_t rows, int64_t cols, Rng* rng, float lo = 0.0f,
                     float hi = 1.0f);
  /// Glorot/Xavier uniform initialisation for a (fan_in x fan_out) weight.
  static Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

  // -- Shape ------------------------------------------------------------

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }
  bool is_scalar() const { return rows_ == 1 && cols_ == 1; }
  bool SameShape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  // -- Element access ---------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    GR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    GR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float& operator[](int64_t i) {
    GR_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    GR_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  /// Value of a 1x1 tensor.
  float scalar() const {
    GR_CHECK(is_scalar()) << "scalar() on " << rows_ << "x" << cols_;
    return data_[0];
  }

  const float* row(int64_t r) const { return data() + r * cols_; }
  float* row(int64_t r) { return data() + r * cols_; }

  // -- In-place value operations (no autograd; used by kernels/optim) ----

  void Fill(float v);
  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this += alpha * other (same shape).
  void AxpyInPlace(float alpha, const Tensor& other);
  /// this *= alpha.
  void ScaleInPlace(float alpha);
  /// this = elementwise this * other.
  void MulInPlace(const Tensor& other);

  // -- Value-level helpers ------------------------------------------------

  Tensor Transposed() const;
  /// Deep equality within tolerance.
  bool AllClose(const Tensor& other, float atol = 1e-5f,
                float rtol = 1e-4f) const;
  float MaxAbs() const;
  float Sum() const;
  float Mean() const;
  /// Returns true if any element is NaN or Inf.
  bool HasNonFinite() const;
  /// Index of the max element in row r (argmax over columns).
  int64_t ArgMaxRow(int64_t r) const;

  std::string DebugString(int64_t max_elems = 32) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

// -- Dense kernels (value level, no autograd) ----------------------------

/// C = A * B. Shapes (m,k) x (k,n) -> (m,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B. Shapes (k,m) x (k,n) -> (m,n).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T. Shapes (m,k) x (n,k) -> (m,n).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
/// Column sums -> (1, n).
Tensor ColSum(const Tensor& a);
/// Row sums -> (m, 1).
Tensor RowSum(const Tensor& a);

}  // namespace tensor
}  // namespace graphrare

#endif  // GRAPHRARE_TENSOR_TENSOR_H_

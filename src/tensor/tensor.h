// Copyright 2026 The GraphRARE Authors.
//
// Dense row-major float32 matrix. The whole library standardises on 2-D
// tensors: vectors are (n, 1) columns and scalars are (1, 1). This keeps
// every kernel and every backward pass unambiguous about shapes.

#ifndef GRAPHRARE_TENSOR_TENSOR_H_
#define GRAPHRARE_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace graphrare {
namespace tensor {

namespace internal {
// Buffer plumbing for the tensor pool (implemented in tensor.cc). Buffers
// returned by AcquireZeroed are size-n and zero-filled; AcquireRaw buffers
// are size-n with unspecified contents (callers overwrite every element).
std::vector<float> PoolAcquireZeroed(size_t n);
std::vector<float> PoolAcquireRaw(size_t n);
std::vector<float> PoolAcquireCopy(const std::vector<float>& src);
void PoolRelease(std::vector<float> buf);
}  // namespace internal

/// Thread-safe free-list pool behind every Tensor allocation. Forward +
/// backward passes create and drop one Tensor per tape op; recycling the
/// float buffers keeps the allocator out of the training/serving hot path
/// (large buffers would otherwise round-trip through mmap on most mallocs).
///
/// The pool is compiled out under ASan/UBSan builds (GRAPHRARE_SANITIZE)
/// so the sanitizers see every logical allocation and use-after-free —
/// Enabled() reports false there and every Acquire hits the heap.
class TensorPool {
 public:
  struct Stats {
    uint64_t hits = 0;      // acquires served from the free list
    uint64_t misses = 0;    // acquires that had to allocate
    uint64_t returns = 0;   // buffers accepted back into the pool
    uint64_t drops = 0;     // buffers freed instead (caps / disabled)
    uint64_t cached_bytes = 0;  // bytes currently parked in the pool
  };

  /// False when pooling is compiled out (sanitizer builds) or switched off.
  static bool Enabled();
  /// Runtime kill switch (tests, leak triage). No-op in sanitizer builds.
  static void SetEnabled(bool enabled);
  static Stats GetStats();
  /// Frees every cached buffer (stats other than cached_bytes persist).
  static void Clear();
};

/// Dense (rows x cols) float32 matrix with value semantics. Buffers are
/// recycled through TensorPool; see the class comment above.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-filled (rows x cols).
  Tensor(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
    GR_CHECK_GE(rows, 0);
    GR_CHECK_GE(cols, 0);
    data_ = internal::PoolAcquireZeroed(static_cast<size_t>(rows * cols));
  }

  ~Tensor() { internal::PoolRelease(std::move(data_)); }

  Tensor(const Tensor& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(internal::PoolAcquireCopy(other.data_)) {}

  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
  }

  Tensor& operator=(const Tensor& other) {
    if (this == &other) return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    if (data_.capacity() >= other.data_.size()) {
      data_.assign(other.data_.begin(), other.data_.end());
    } else {
      internal::PoolRelease(std::move(data_));
      data_ = internal::PoolAcquireCopy(other.data_);
    }
    return *this;
  }

  Tensor& operator=(Tensor&& other) noexcept {
    if (this == &other) return *this;
    internal::PoolRelease(std::move(data_));
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
    return *this;
  }

  // -- Factories --------------------------------------------------------

  static Tensor Zeros(int64_t rows, int64_t cols) {
    return Tensor(rows, cols);
  }
  /// (rows x cols) with unspecified contents — strictly for kernels that
  /// provably store every element before the tensor escapes (the sparse /
  /// blocked kernels, whose outputs are multi-megabyte and would otherwise
  /// pay a redundant zero fill per call).
  static Tensor Uninitialized(int64_t rows, int64_t cols) {
    GR_CHECK_GE(rows, 0);
    GR_CHECK_GE(cols, 0);
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.data_ = internal::PoolAcquireRaw(static_cast<size_t>(rows * cols));
    return t;
  }
  static Tensor Ones(int64_t rows, int64_t cols) {
    return Full(rows, cols, 1.0f);
  }
  static Tensor Full(int64_t rows, int64_t cols, float v) {
    Tensor t(rows, cols);
    t.Fill(v);
    return t;
  }
  /// 1x1 scalar tensor.
  static Tensor Scalar(float v) { return Full(1, 1, v); }
  /// Identity matrix.
  static Tensor Eye(int64_t n) {
    Tensor t(n, n);
    for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
    return t;
  }
  /// Takes ownership of `data` (must have rows*cols elements).
  static Tensor FromData(int64_t rows, int64_t cols, std::vector<float> data) {
    GR_CHECK_EQ(static_cast<int64_t>(data.size()), rows * cols);
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.data_ = std::move(data);
    return t;
  }
  /// Column vector (n x 1) from data.
  static Tensor ColumnVector(std::vector<float> data) {
    const int64_t n = static_cast<int64_t>(data.size());
    return FromData(n, 1, std::move(data));
  }
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(int64_t rows, int64_t cols, Rng* rng,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor Rand(int64_t rows, int64_t cols, Rng* rng, float lo = 0.0f,
                     float hi = 1.0f);
  /// Glorot/Xavier uniform initialisation for a (fan_in x fan_out) weight.
  static Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

  // -- Shape ------------------------------------------------------------

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }
  bool is_scalar() const { return rows_ == 1 && cols_ == 1; }
  bool SameShape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  // -- Element access ---------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    GR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    GR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float& operator[](int64_t i) {
    GR_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    GR_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  /// Value of a 1x1 tensor.
  float scalar() const {
    GR_CHECK(is_scalar()) << "scalar() on " << rows_ << "x" << cols_;
    return data_[0];
  }

  const float* row(int64_t r) const { return data() + r * cols_; }
  float* row(int64_t r) { return data() + r * cols_; }

  // -- In-place value operations (no autograd; used by kernels/optim) ----

  void Fill(float v);
  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this += alpha * other (same shape).
  void AxpyInPlace(float alpha, const Tensor& other);
  /// this *= alpha.
  void ScaleInPlace(float alpha);
  /// this = elementwise this * other.
  void MulInPlace(const Tensor& other);

  // -- Value-level helpers ------------------------------------------------

  Tensor Transposed() const;
  /// Deep equality within tolerance.
  bool AllClose(const Tensor& other, float atol = 1e-5f,
                float rtol = 1e-4f) const;
  float MaxAbs() const;
  /// Compensated sum of all elements (Neumaier's variant of Kahan
  /// summation on a double accumulator), so large-matrix sums lose no
  /// low-order bits to the accumulation itself — including under heavy
  /// cancellation. Mean() divides the same compensated double sum.
  float Sum() const;
  float Mean() const;
  /// Returns true if any element is NaN or Inf.
  bool HasNonFinite() const;
  /// Index of the max element in row r (argmax over columns).
  int64_t ArgMaxRow(int64_t r) const;

  std::string DebugString(int64_t max_elems = 32) const;

 private:
  /// Kahan-compensated double sum (shared by Sum / Mean).
  double SumDouble() const;

  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

// -- Dense kernels (value level, no autograd) ----------------------------
//
// MatMul / MatMulTransB are cache-blocked and register-tiled, but every
// C[i,j] is still accumulated over the full k extent in ascending order, so
// their results are exactly the plain-triple-loop results and are invariant
// to thread count (threads own disjoint row blocks of C).
//
// MatMulTransA reduces over k (the large dimension in every dense backward
// pass), so its deterministic contract is block-structured instead: k is
// split into fixed blocks of kTransAKBlock rows, each block's partial
// product accumulates in ascending-k order, and the partials are summed in
// ascending block order — the same bits for any OMP_NUM_THREADS and for
// OpenMP-off builds. For k <= kTransAKBlock this degenerates to the plain
// triple-loop result.

/// Fixed k-reduction block for MatMulTransA (part of its numeric contract;
/// tests reference it to build the bit-exact oracle).
inline constexpr int64_t kTransAKBlock = 256;

/// C = A * B. Shapes (m,k) x (k,n) -> (m,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B. Shapes (k,m) x (k,n) -> (m,n).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T. Shapes (m,k) x (n,k) -> (m,n).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
/// Column sums -> (1, n). Deterministic fixed-block parallel reduction over
/// row blocks of kColSumRowBlock.
inline constexpr int64_t kColSumRowBlock = 1024;
Tensor ColSum(const Tensor& a);
/// Row sums -> (m, 1).
Tensor RowSum(const Tensor& a);

}  // namespace tensor
}  // namespace graphrare

#endif  // GRAPHRARE_TENSOR_TENSOR_H_

#include "tensor/autograd.h"

#include <unordered_set>

namespace graphrare {
namespace tensor {

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<AutogradNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

const Tensor& Variable::value() const {
  GR_CHECK(defined());
  return node_->value;
}

Tensor* Variable::mutable_value() {
  GR_CHECK(defined());
  GR_CHECK(node_->is_leaf) << "mutable_value() is only valid on leaf nodes";
  return &node_->value;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

const Tensor& Variable::grad() const {
  GR_CHECK(defined());
  return node_->grad;
}

bool Variable::has_grad() const {
  return defined() && node_->grad.numel() == node_->value.numel() &&
         node_->value.numel() > 0;
}

void Variable::ZeroGrad() {
  GR_CHECK(defined());
  if (node_->grad.numel() == node_->value.numel()) {
    node_->grad.Fill(0.0f);
  }
}

Variable Variable::Detach() const {
  GR_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<AutogradNode> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

void Variable::Backward() const {
  GR_CHECK(defined());
  GR_CHECK(node_->value.is_scalar())
      << "Backward() requires a scalar root, got " << node_->value.rows()
      << "x" << node_->value.cols();

  // Iterative post-order DFS to get a reverse topological order.
  std::vector<AutogradNode*> topo;
  std::unordered_set<AutogradNode*> visited;
  struct Frame {
    AutogradNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) {
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      AutogradNode* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Seed the root gradient with 1.
  node_->EnsureGrad();
  node_->grad.Fill(1.0f);

  // topo is post-order (children after parents are *not* guaranteed by
  // post-order alone — reverse of post-order gives the correct order where
  // every node is processed before its parents' gradients are needed).
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    AutogradNode* n = *it;
    if (n->backward && n->grad.numel() == n->value.numel()) {
      n->backward(n);
    }
    // An interior node's grad is fully consumed once its own backward has
    // run (consumers ran earlier in this loop), so hand the buffer back to
    // the tensor pool immediately — the very next EnsureGrad in this pass
    // typically reuses it. Leaf grads are the product of Backward and the
    // root's seed stays for inspection.
    if (!n->is_leaf && n != node_.get()) {
      n->grad = Tensor();
    }
  }
}

Variable MakeOpNode(Tensor value, std::vector<Variable> parents,
                    std::function<void(AutogradNode*)> backward) {
  auto node = std::make_shared<AutogradNode>();
  node->value = std::move(value);
  node->is_leaf = false;
  bool any_grad = false;
  for (const auto& p : parents) {
    if (p.requires_grad()) {
      any_grad = true;
      break;
    }
  }
  node->requires_grad = any_grad;
  if (any_grad) {
    node->parents.reserve(parents.size());
    for (auto& p : parents) node->parents.push_back(p.node());
    node->backward = std::move(backward);
  }
  return Variable::FromNode(std::move(node));
}

}  // namespace tensor
}  // namespace graphrare

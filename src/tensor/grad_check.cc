#include "tensor/grad_check.h"

#include <cmath>

namespace graphrare {
namespace tensor {

GradCheckResult CheckGradient(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    std::vector<Variable>* inputs, size_t check_index, float eps, float atol,
    float rtol) {
  GR_CHECK(inputs != nullptr);
  GR_CHECK_LT(check_index, inputs->size());

  // Analytic gradient.
  for (auto& in : *inputs) in.ZeroGrad();
  Variable loss = f(*inputs);
  GR_CHECK(loss.value().is_scalar());
  loss.Backward();
  Variable& target = (*inputs)[check_index];
  GR_CHECK(target.requires_grad());
  Tensor analytic = target.has_grad()
                        ? target.grad()
                        : Tensor(target.rows(), target.cols());

  GradCheckResult result;
  Tensor* x = target.mutable_value();
  for (int64_t i = 0; i < x->numel(); ++i) {
    const float orig = (*x)[i];
    (*x)[i] = orig + eps;
    const float f_plus = f(*inputs).value().scalar();
    (*x)[i] = orig - eps;
    const float f_minus = f(*inputs).value().scalar();
    (*x)[i] = orig;
    const float numeric = (f_plus - f_minus) / (2.0f * eps);
    const float abs_err = std::abs(analytic[i] - numeric);
    const float rel_err =
        abs_err / std::max(1e-8f, std::abs(numeric));
    if (abs_err > result.max_abs_err) {
      result.max_abs_err = abs_err;
      result.worst_index = i;
    }
    result.max_rel_err = std::max(result.max_rel_err, rel_err);
    if (abs_err > atol + rtol * std::abs(numeric)) {
      result.ok = false;
    }
  }
  return result;
}

}  // namespace tensor
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Numerical gradient checking for tests: compares backprop gradients against
// central finite differences.

#ifndef GRAPHRARE_TENSOR_GRAD_CHECK_H_
#define GRAPHRARE_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "tensor/autograd.h"

namespace graphrare {
namespace tensor {

/// Result of a gradient check on a single input.
struct GradCheckResult {
  bool ok = true;
  float max_abs_err = 0.0f;
  float max_rel_err = 0.0f;
  int64_t worst_index = -1;
};

/// Checks d f(inputs) / d inputs[check_index] against central differences.
///
/// `f` must build the graph from the given leaf variables and return a
/// scalar Variable. All inputs must require grad. Uses double-sided
/// differences with step `eps` and tolerance `atol + rtol * |numeric|`.
GradCheckResult CheckGradient(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    std::vector<Variable>* inputs, size_t check_index, float eps = 1e-3f,
    float atol = 1e-2f, float rtol = 5e-2f);

}  // namespace tensor
}  // namespace graphrare

#endif  // GRAPHRARE_TENSOR_GRAD_CHECK_H_

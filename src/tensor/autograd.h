// Copyright 2026 The GraphRARE Authors.
//
// Reverse-mode automatic differentiation over Tensor. A Variable is a handle
// to a node in a dynamically built tape; Backward() on a scalar root
// topologically sorts the reachable subgraph and accumulates gradients into
// leaf nodes (parameters). Each forward pass builds a fresh graph; parameter
// leaves persist across passes and their gradients accumulate until ZeroGrad.

#ifndef GRAPHRARE_TENSOR_AUTOGRAD_H_
#define GRAPHRARE_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace graphrare {
namespace tensor {

struct AutogradNode;

/// Shared handle to an autograd tape node. Copying a Variable aliases the
/// node (PyTorch semantics).
class Variable {
 public:
  Variable() = default;

  /// Creates a leaf node holding `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// True when this handle points at a node.
  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Mutable access to the value (optimizer updates). Only valid on leaves.
  Tensor* mutable_value();

  bool requires_grad() const;
  /// Gradient accumulated by the last Backward(). Zero-shaped until then.
  const Tensor& grad() const;
  bool has_grad() const;
  void ZeroGrad();

  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

  /// A new leaf sharing a copy of the value, cut off from the tape.
  Variable Detach() const;

  /// Runs backpropagation from this scalar (1x1) variable.
  void Backward() const;

  const std::shared_ptr<AutogradNode>& node() const { return node_; }

  /// Internal: wraps an existing node.
  static Variable FromNode(std::shared_ptr<AutogradNode> node);

 private:
  std::shared_ptr<AutogradNode> node_;
};

/// A node on the tape. `backward` reads this node's grad and accumulates
/// into the parents' grads.
struct AutogradNode {
  Tensor value;
  Tensor grad;  // empty until backward touches this node
  bool requires_grad = false;
  bool is_leaf = true;
  std::vector<std::shared_ptr<AutogradNode>> parents;
  std::function<void(AutogradNode*)> backward;

  /// Lazily allocates the grad buffer (zeros, same shape as value).
  Tensor* EnsureGrad() {
    if (grad.numel() != value.numel()) {
      grad = Tensor(value.rows(), value.cols());
    }
    return &grad;
  }
};

/// Creates a non-leaf op node. requires_grad is inherited from parents; when
/// no parent requires grad the parents/backward are dropped (tape pruning).
Variable MakeOpNode(Tensor value, std::vector<Variable> parents,
                    std::function<void(AutogradNode*)> backward);

}  // namespace tensor
}  // namespace graphrare

#endif  // GRAPHRARE_TENSOR_AUTOGRAD_H_

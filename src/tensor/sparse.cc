#include "tensor/sparse.h"

#include <algorithm>

#include "common/parallel.h"

namespace graphrare {
namespace tensor {

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                             std::vector<CooEntry> entries) {
  GR_CHECK_GE(rows, 0);
  GR_CHECK_GE(cols, 0);
  for (const auto& e : entries) {
    GR_CHECK(e.row >= 0 && e.row < rows)
        << "COO row " << e.row << " out of range [0," << rows << ")";
    GR_CHECK(e.col >= 0 && e.col < cols)
        << "COO col " << e.col << " out of range [0," << cols << ")";
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    float sum = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(sum);
    m.row_ptr_[static_cast<size_t>(entries[i].row) + 1]++;
    i = j;
  }
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  GR_CHECK_GE(n, 0);
  // Direct CSR assembly: the diagonal is already sorted and duplicate-free,
  // so the COO round trip (and its O(n log n) sort) is pure overhead.
  CsrMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.row_ptr_.resize(static_cast<size_t>(n) + 1);
  for (int64_t i = 0; i <= n; ++i) m.row_ptr_[static_cast<size_t>(i)] = i;
  m.col_idx_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) m.col_idx_[static_cast<size_t>(i)] = i;
  m.values_.assign(static_cast<size_t>(n), 1.0f);
  return m;
}

Tensor CsrMatrix::SpMM(const Tensor& x) const {
  GR_CHECK_EQ(cols_, x.rows());
  const int64_t f = x.cols();
  Tensor y(rows_, f);
  const float* px = x.data();
  float* py = y.data();
  // Each output row accumulates its own entries in CSR order, so dynamic
  // chunking (which balances skewed row degrees) cannot change the result.
  // grain == rows_ keeps small products serial.
  const int64_t grain = nnz() * f > (1 << 18) ? 64 : rows_;
  ParallelForDynamic(rows_, grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* yrow = py + r * f;
      for (int64_t p = row_ptr_[static_cast<size_t>(r)];
           p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
        const float v = values_[static_cast<size_t>(p)];
        const float* xrow = px + col_idx_[static_cast<size_t>(p)] * f;
        for (int64_t c = 0; c < f; ++c) yrow[c] += v * xrow[c];
      }
    }
  });
  return y;
}

std::shared_ptr<const CsrMatrix> CsrMatrix::Transposed() const {
  if (transposed_cache_) return transposed_cache_;
  // Counting-sort transpose, O(nnz): walking the source rows in ascending
  // order appends each output row's entries in ascending source-row order,
  // which is exactly the sorted CSR invariant — no COO round trip needed.
  // (SpMM backward runs this once per adjacency, then hits the cache.)
  auto t = std::make_shared<CsrMatrix>();
  t->rows_ = cols_;
  t->cols_ = rows_;
  t->row_ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  for (const int64_t c : col_idx_) {
    ++t->row_ptr_[static_cast<size_t>(c) + 1];
  }
  for (size_t r = 0; r < static_cast<size_t>(cols_); ++r) {
    t->row_ptr_[r + 1] += t->row_ptr_[r];
  }
  t->col_idx_.resize(col_idx_.size());
  t->values_.resize(values_.size());
  std::vector<int64_t> next(t->row_ptr_.begin(), t->row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      const int64_t c = col_idx_[static_cast<size_t>(p)];
      const int64_t slot = next[static_cast<size_t>(c)]++;
      t->col_idx_[static_cast<size_t>(slot)] = r;
      t->values_[static_cast<size_t>(slot)] = values_[static_cast<size_t>(p)];
    }
  }
  transposed_cache_ = t;
  return transposed_cache_;
}

CsrMatrix CsrMatrix::Multiply(const CsrMatrix& other) const {
  GR_CHECK_EQ(cols_, other.rows_);
  // Gustavson's algorithm with a dense accumulator per row.
  std::vector<CooEntry> entries;
  std::vector<float> acc(static_cast<size_t>(other.cols_), 0.0f);
  std::vector<int64_t> touched;
  for (int64_t r = 0; r < rows_; ++r) {
    touched.clear();
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      const int64_t k = col_idx_[static_cast<size_t>(p)];
      const float va = values_[static_cast<size_t>(p)];
      for (int64_t q = other.row_ptr_[static_cast<size_t>(k)];
           q < other.row_ptr_[static_cast<size_t>(k) + 1]; ++q) {
        const int64_t c = other.col_idx_[static_cast<size_t>(q)];
        if (acc[static_cast<size_t>(c)] == 0.0f) touched.push_back(c);
        acc[static_cast<size_t>(c)] += va * other.values_[static_cast<size_t>(q)];
      }
    }
    for (int64_t c : touched) {
      // An exact zero sum is indistinguishable from "untouched"; such
      // cancellations simply drop the entry, which is fine for adjacency use.
      if (acc[static_cast<size_t>(c)] != 0.0f) {
        entries.push_back({r, c, acc[static_cast<size_t>(c)]});
        acc[static_cast<size_t>(c)] = 0.0f;
      }
    }
  }
  return FromCoo(rows_, other.cols_, std::move(entries));
}

CsrMatrix CsrMatrix::SelectRows(const std::vector<int64_t>& rows) const {
  // Direct CSR assembly (not FromCoo): the source rows are already sorted,
  // so slicing is a pure copy and keeps the per-row entry order bitwise
  // identical to the source — the mini-batch equivalence guarantee relies
  // on this.
  CsrMatrix m;
  m.rows_ = static_cast<int64_t>(rows.size());
  m.cols_ = cols_;
  m.row_ptr_.assign(rows.size() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    GR_CHECK(r >= 0 && r < rows_) << "SelectRows: row " << r
                                  << " out of range [0," << rows_ << ")";
    total += static_cast<size_t>(row_ptr_[static_cast<size_t>(r) + 1] -
                                 row_ptr_[static_cast<size_t>(r)]);
    m.row_ptr_[i + 1] = static_cast<int64_t>(total);
  }
  m.col_idx_.reserve(total);
  m.values_.reserve(total);
  for (const int64_t r : rows) {
    const auto begin = static_cast<size_t>(row_ptr_[static_cast<size_t>(r)]);
    const auto end = static_cast<size_t>(row_ptr_[static_cast<size_t>(r) + 1]);
    m.col_idx_.insert(m.col_idx_.end(), col_idx_.begin() + begin,
                      col_idx_.begin() + end);
    m.values_.insert(m.values_.end(), values_.begin() + begin,
                     values_.begin() + end);
  }
  return m;
}

CsrMatrix CsrMatrix::WithUniformValues(float v) const {
  CsrMatrix m = *this;
  std::fill(m.values_.begin(), m.values_.end(), v);
  m.transposed_cache_.reset();
  return m;
}

float CsrMatrix::At(int64_t r, int64_t c) const {
  GR_CHECK(r >= 0 && r < rows_);
  GR_CHECK(c >= 0 && c < cols_);
  const auto begin = col_idx_.begin() + row_ptr_[static_cast<size_t>(r)];
  const auto end = col_idx_.begin() + row_ptr_[static_cast<size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0f;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

Tensor CsrMatrix::ToDense() const {
  Tensor d(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      d.at(r, col_idx_[static_cast<size_t>(p)]) =
          values_[static_cast<size_t>(p)];
    }
  }
  return d;
}

}  // namespace tensor
}  // namespace graphrare

#include "tensor/sparse.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/parallel.h"

namespace graphrare {
namespace tensor {

namespace {

// Same generic vector idiom as the GEMM micro-kernel in tensor.cc: lanes
// are independent output features, loads/stores go through memcpy so
// vector values never cross a function boundary (no -Wpsabi on non-AVX
// builds), and -ffp-contract=off keeps mul+add unfused, matching the
// scalar loop bit for bit.
typedef float V8f __attribute__((vector_size(32)));

inline V8f LoadV8(const float* p) {
  V8f v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreV8(float* p, const V8f& v) { std::memcpy(p, &v, sizeof(v)); }

// The panel kernels below compute one CSR row's contribution to a
// contiguous block of output features entirely in registers: a single walk
// over the row's nonzeros, where every vals[p] / cols[p] load is shared by
// all 8-wide panels in the block, and y sees exactly one store per element
// instead of a load+store per nonzero. Per-(row, feature) sums still run
// in ascending-p order from zero, so the result is bitwise identical to
// the scalar reference loop regardless of which kernel handles which
// feature block — and regardless of thread count, since rows own their
// outputs exclusively.

// The gathers of x rows are the latency bottleneck at scale (the feature
// matrix outgrows L2), so the wide kernel prefetches the x row several
// nonzeros ahead. Prefetching is invisible to the arithmetic: determinism
// is untouched.
constexpr int64_t kPrefetchDist = 16;

inline void PrefetchRow(const float* xr) {
  __builtin_prefetch(xr, 0, 3);
  __builtin_prefetch(xr + 16, 0, 3);
  __builtin_prefetch(xr + 32, 0, 3);
  __builtin_prefetch(xr + 48, 0, 3);
}

/// y[0..64) = row · x[., 0..64): eight panels, full register residency.
/// `pmax` bounds the prefetch lookahead (the caller's chunk end, so the
/// prefetch stream runs seamlessly across row boundaries).
inline void SpmmRow64(const int64_t* cols, const float* vals, int64_t begin,
                      int64_t end, int64_t pmax, const float* px, int64_t f,
                      float* dst) {
  V8f a0 = {0, 0, 0, 0, 0, 0, 0, 0};
  V8f a1 = a0, a2 = a0, a3 = a0, a4 = a0, a5 = a0, a6 = a0, a7 = a0;
  for (int64_t p = begin; p < end; ++p) {
    if (p + kPrefetchDist < pmax) PrefetchRow(px + cols[p + kPrefetchDist] * f);
    const float v = vals[p];
    const float* xr = px + cols[p] * f;
    a0 += v * LoadV8(xr);
    a1 += v * LoadV8(xr + 8);
    a2 += v * LoadV8(xr + 16);
    a3 += v * LoadV8(xr + 24);
    a4 += v * LoadV8(xr + 32);
    a5 += v * LoadV8(xr + 40);
    a6 += v * LoadV8(xr + 48);
    a7 += v * LoadV8(xr + 56);
  }
  StoreV8(dst, a0);
  StoreV8(dst + 8, a1);
  StoreV8(dst + 16, a2);
  StoreV8(dst + 24, a3);
  StoreV8(dst + 32, a4);
  StoreV8(dst + 40, a5);
  StoreV8(dst + 48, a6);
  StoreV8(dst + 56, a7);
}

/// y[0..32) = row · x[., 0..32): four panels.
inline void SpmmRow32(const int64_t* cols, const float* vals, int64_t begin,
                      int64_t end, const float* px, int64_t f, float* dst) {
  V8f a0 = {0, 0, 0, 0, 0, 0, 0, 0};
  V8f a1 = a0, a2 = a0, a3 = a0;
  for (int64_t p = begin; p < end; ++p) {
    const float v = vals[p];
    const float* xr = px + cols[p] * f;
    a0 += v * LoadV8(xr);
    a1 += v * LoadV8(xr + 8);
    a2 += v * LoadV8(xr + 16);
    a3 += v * LoadV8(xr + 24);
  }
  StoreV8(dst, a0);
  StoreV8(dst + 8, a1);
  StoreV8(dst + 16, a2);
  StoreV8(dst + 24, a3);
}

/// y[0..8) = row · x[., 0..8): one panel.
inline void SpmmRow8(const int64_t* cols, const float* vals, int64_t begin,
                     int64_t end, const float* px, int64_t f, float* dst) {
  V8f a0 = {0, 0, 0, 0, 0, 0, 0, 0};
  for (int64_t p = begin; p < end; ++p) {
    a0 += vals[p] * LoadV8(px + cols[p] * f);
  }
  StoreV8(dst, a0);
}

/// Writes yrow[0..f) = nonzeros [begin, end) of one row · x, widest slabs
/// first: for the common f == 64 the whole row runs in eight register
/// panels and vals/cols are walked exactly once. Every output element is
/// stored (the output tensor may start uninitialised).
inline void SpmmRowInto(const int64_t* cols, const float* vals, int64_t begin,
                        int64_t end, int64_t pmax, const float* px, int64_t f,
                        float* yrow) {
  int64_t j = 0;
  for (; j + 64 <= f; j += 64) {
    SpmmRow64(cols, vals, begin, end, pmax, px + j, f, yrow + j);
  }
  if (j + 32 <= f) {
    SpmmRow32(cols, vals, begin, end, px + j, f, yrow + j);
    j += 32;
  }
  for (; j + 8 <= f; j += 8) {
    SpmmRow8(cols, vals, begin, end, px + j, f, yrow + j);
  }
  // Scalar tail for f % 8 features (also the whole row when f < 8); each
  // element accumulates its own ascending-p sum in a register.
  for (int64_t c = j; c < f; ++c) {
    float acc = 0.0f;
    for (int64_t p = begin; p < end; ++p) {
      acc += vals[p] * px[cols[p] * f + c];
    }
    yrow[c] = acc;
  }
}

}  // namespace

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                             std::vector<CooEntry> entries) {
  GR_CHECK_GE(rows, 0);
  GR_CHECK_GE(cols, 0);
  for (const auto& e : entries) {
    GR_CHECK(e.row >= 0 && e.row < rows)
        << "COO row " << e.row << " out of range [0," << rows << ")";
    GR_CHECK(e.col >= 0 && e.col < cols)
        << "COO col " << e.col << " out of range [0," << cols << ")";
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    float sum = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(sum);
    m.row_ptr_[static_cast<size_t>(entries[i].row) + 1]++;
    i = j;
  }
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  GR_CHECK_GE(n, 0);
  // Direct CSR assembly: the diagonal is already sorted and duplicate-free,
  // so the COO round trip (and its O(n log n) sort) is pure overhead.
  CsrMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.row_ptr_.resize(static_cast<size_t>(n) + 1);
  for (int64_t i = 0; i <= n; ++i) m.row_ptr_[static_cast<size_t>(i)] = i;
  m.col_idx_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) m.col_idx_[static_cast<size_t>(i)] = i;
  m.values_.assign(static_cast<size_t>(n), 1.0f);
  return m;
}

Tensor CsrMatrix::SpMM(const Tensor& x) const {
  GR_CHECK_EQ(cols_, x.rows());
  const int64_t f = x.cols();
  // Every element of y is written exactly once below (SpmmRowInto stores
  // the full row; empty rows are memset), so the multi-megabyte zero fill
  // of a default-constructed Tensor would be pure overwrite traffic.
  Tensor y = Tensor::Uninitialized(rows_, f);
  const float* px = x.data();
  float* py = y.data();
  const int64_t* cols = col_idx_.data();
  const float* vals = values_.data();
  // Each output row accumulates its own entries in CSR order, so dynamic
  // chunking (which balances skewed row degrees) cannot change the result.
  // grain == rows_ keeps small products serial.
  const int64_t grain = nnz() * f > (1 << 18) ? 64 : rows_;
  ParallelForDynamic(rows_, grain, [&](int64_t r0, int64_t r1) {
    const int64_t pmax = row_ptr_[static_cast<size_t>(r1)];
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t begin = row_ptr_[static_cast<size_t>(r)];
      const int64_t end = row_ptr_[static_cast<size_t>(r) + 1];
      if (begin == end) {
        std::memset(py + r * f, 0, static_cast<size_t>(f) * sizeof(float));
        continue;
      }
      SpmmRowInto(cols, vals, begin, end, pmax, px, f, py + r * f);
    }
  });
  return y;
}

std::shared_ptr<const CsrMatrix> CsrMatrix::Transposed() const {
  // call_once: two threads hitting the SpMM backward on a shared adjacency
  // at the same time must not race on the cache pointer (one build wins,
  // both see the same shared matrix afterwards).
  std::call_once(transpose_slot_->once, [this] {
    // Counting-sort transpose, O(nnz): walking the source rows in ascending
    // order appends each output row's entries in ascending source-row
    // order, which is exactly the sorted CSR invariant — no COO round trip
    // needed. (SpMM backward runs this once per adjacency, then hits the
    // cache.)
    auto t = std::make_shared<CsrMatrix>();
    t->rows_ = cols_;
    t->cols_ = rows_;
    t->row_ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
    for (const int64_t c : col_idx_) {
      ++t->row_ptr_[static_cast<size_t>(c) + 1];
    }
    for (size_t r = 0; r < static_cast<size_t>(cols_); ++r) {
      t->row_ptr_[r + 1] += t->row_ptr_[r];
    }
    t->col_idx_.resize(col_idx_.size());
    t->values_.resize(values_.size());
    std::vector<int64_t> next(t->row_ptr_.begin(), t->row_ptr_.end() - 1);
    for (int64_t r = 0; r < rows_; ++r) {
      for (int64_t p = row_ptr_[static_cast<size_t>(r)];
           p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
        const int64_t c = col_idx_[static_cast<size_t>(p)];
        const int64_t slot = next[static_cast<size_t>(c)]++;
        t->col_idx_[static_cast<size_t>(slot)] = r;
        t->values_[static_cast<size_t>(slot)] =
            values_[static_cast<size_t>(p)];
      }
    }
    transpose_slot_->value = std::move(t);
  });
  return transpose_slot_->value;
}

CsrMatrix CsrMatrix::Multiply(const CsrMatrix& other) const {
  GR_CHECK_EQ(cols_, other.rows_);
  // Gustavson's algorithm with a dense accumulator per row. Sorting the
  // touched-column list gives each output row in CSR order directly, so
  // the rows are emitted as they finish — no COO materialisation and no
  // global re-sort through FromCoo. Accumulation order per (r, c) is the
  // q-traversal order, identical to the old COO path, so values match it
  // bit for bit.
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = other.cols_;
  m.row_ptr_.assign(static_cast<size_t>(rows_) + 1, 0);
  std::vector<float> acc(static_cast<size_t>(other.cols_), 0.0f);
  std::vector<int64_t> touched;
  for (int64_t r = 0; r < rows_; ++r) {
    touched.clear();
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      const int64_t k = col_idx_[static_cast<size_t>(p)];
      const float va = values_[static_cast<size_t>(p)];
      for (int64_t q = other.row_ptr_[static_cast<size_t>(k)];
           q < other.row_ptr_[static_cast<size_t>(k) + 1]; ++q) {
        const int64_t c = other.col_idx_[static_cast<size_t>(q)];
        if (acc[static_cast<size_t>(c)] == 0.0f) touched.push_back(c);
        acc[static_cast<size_t>(c)] +=
            va * other.values_[static_cast<size_t>(q)];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int64_t c : touched) {
      // An exact zero sum is indistinguishable from "untouched"; such
      // cancellations simply drop the entry, which is fine for adjacency
      // use.
      if (acc[static_cast<size_t>(c)] != 0.0f) {
        m.col_idx_.push_back(c);
        m.values_.push_back(acc[static_cast<size_t>(c)]);
        acc[static_cast<size_t>(c)] = 0.0f;
      }
    }
    m.row_ptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::SelectRows(const std::vector<int64_t>& rows) const {
  // Direct CSR assembly (not FromCoo): the source rows are already sorted,
  // so slicing is a pure copy and keeps the per-row entry order bitwise
  // identical to the source — the mini-batch equivalence guarantee relies
  // on this.
  CsrMatrix m;
  m.rows_ = static_cast<int64_t>(rows.size());
  m.cols_ = cols_;
  m.row_ptr_.assign(rows.size() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    GR_CHECK(r >= 0 && r < rows_) << "SelectRows: row " << r
                                  << " out of range [0," << rows_ << ")";
    total += static_cast<size_t>(row_ptr_[static_cast<size_t>(r) + 1] -
                                 row_ptr_[static_cast<size_t>(r)]);
    m.row_ptr_[i + 1] = static_cast<int64_t>(total);
  }
  m.col_idx_.reserve(total);
  m.values_.reserve(total);
  for (const int64_t r : rows) {
    const auto begin = static_cast<size_t>(row_ptr_[static_cast<size_t>(r)]);
    const auto end = static_cast<size_t>(row_ptr_[static_cast<size_t>(r) + 1]);
    m.col_idx_.insert(m.col_idx_.end(), col_idx_.begin() + begin,
                      col_idx_.begin() + end);
    m.values_.insert(m.values_.end(), values_.begin() + begin,
                     values_.begin() + end);
  }
  return m;
}

CsrMatrix CsrMatrix::WithUniformValues(float v) const {
  CsrMatrix m = *this;  // copy ctor starts with a fresh transpose cache
  std::fill(m.values_.begin(), m.values_.end(), v);
  return m;
}

CsrMatrix CsrMatrix::Permuted(const std::vector<int64_t>& perm,
                              bool permute_rows, bool permute_cols) const {
  GR_CHECK(permute_rows || permute_cols);
  std::vector<int64_t> inv;
  if (permute_rows) {
    GR_CHECK_EQ(static_cast<int64_t>(perm.size()), rows_);
    inv.assign(static_cast<size_t>(rows_), -1);
    for (int64_t i = 0; i < rows_; ++i) {
      const int64_t q = perm[static_cast<size_t>(i)];
      GR_CHECK(q >= 0 && q < rows_) << "Permuted: index " << q
                                    << " out of range [0," << rows_ << ")";
      GR_CHECK_EQ(inv[static_cast<size_t>(q)], -1)
          << "Permuted: perm is not a permutation (duplicate " << q << ")";
      inv[static_cast<size_t>(q)] = i;
    }
  }
  if (permute_cols) {
    GR_CHECK_EQ(static_cast<int64_t>(perm.size()), cols_);
  }
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.reserve(static_cast<size_t>(rows_) + 1);
  m.row_ptr_.push_back(0);
  m.col_idx_.reserve(col_idx_.size());
  m.values_.reserve(values_.size());
  std::vector<std::pair<int64_t, float>> entries;
  for (int64_t nr = 0; nr < rows_; ++nr) {
    const int64_t r = permute_rows ? inv[static_cast<size_t>(nr)] : nr;
    entries.clear();
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      int64_t c = col_idx_[static_cast<size_t>(p)];
      if (permute_cols) {
        c = perm[static_cast<size_t>(c)];
        GR_CHECK(c >= 0 && c < cols_) << "Permuted: index " << c
                                      << " out of range [0," << cols_ << ")";
      }
      entries.emplace_back(c, values_[static_cast<size_t>(p)]);
    }
    // Columns are unique within a row, so the sort (and hence the output)
    // is unambiguous; values travel untouched.
    std::sort(entries.begin(), entries.end());
    for (const auto& e : entries) {
      m.col_idx_.push_back(e.first);
      m.values_.push_back(e.second);
    }
    m.row_ptr_.push_back(static_cast<int64_t>(m.col_idx_.size()));
  }
  return m;
}

float CsrMatrix::At(int64_t r, int64_t c) const {
  GR_CHECK(r >= 0 && r < rows_);
  GR_CHECK(c >= 0 && c < cols_);
  const auto begin = col_idx_.begin() + row_ptr_[static_cast<size_t>(r)];
  const auto end = col_idx_.begin() + row_ptr_[static_cast<size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0f;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

Tensor CsrMatrix::ToDense() const {
  Tensor d(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      d.at(r, col_idx_[static_cast<size_t>(p)]) =
          values_[static_cast<size_t>(p)];
    }
  }
  return d;
}

}  // namespace tensor
}  // namespace graphrare

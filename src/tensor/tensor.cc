#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace graphrare {
namespace tensor {

Tensor Tensor::Randn(int64_t rows, int64_t cols, Rng* rng, float stddev) {
  GR_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Normal()) * stddev;
  }
  return t;
}

Tensor Tensor::Rand(int64_t rows, int64_t cols, Rng* rng, float lo, float hi) {
  GR_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Rand(fan_in, fan_out, rng, -limit, limit);
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::AddInPlace(const Tensor& other) {
  GR_CHECK(SameShape(other)) << "AddInPlace shape mismatch: " << rows_ << "x"
                             << cols_ << " vs " << other.rows_ << "x"
                             << other.cols_;
  const float* src = other.data();
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::AxpyInPlace(float alpha, const Tensor& other) {
  GR_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::ScaleInPlace(float alpha) {
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] *= alpha;
}

void Tensor::MulInPlace(const Tensor& other) {
  GR_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] *= src[i];
}

Tensor Tensor::Transposed() const {
  Tensor t(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

bool Tensor::AllClose(const Tensor& other, float atol, float rtol) const {
  if (!SameShape(other)) return false;
  for (int64_t i = 0; i < numel(); ++i) {
    const float a = (*this)[i];
    const float b = other[i];
    if (std::abs(a - b) > atol + rtol * std::abs(b)) return false;
  }
  return true;
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (int64_t i = 0; i < numel(); ++i) m = std::max(m, std::abs((*this)[i]));
  return m;
}

float Tensor::Sum() const {
  // Kahan summation: benches accumulate over large matrices.
  double s = 0.0;
  for (int64_t i = 0; i < numel(); ++i) s += (*this)[i];
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  GR_CHECK_GT(numel(), 0);
  return Sum() / static_cast<float>(numel());
}

bool Tensor::HasNonFinite() const {
  for (int64_t i = 0; i < numel(); ++i) {
    if (!std::isfinite((*this)[i])) return true;
  }
  return false;
}

int64_t Tensor::ArgMaxRow(int64_t r) const {
  GR_CHECK(r >= 0 && r < rows_);
  GR_CHECK_GT(cols_, 0);
  const float* p = row(r);
  int64_t best = 0;
  for (int64_t c = 1; c < cols_; ++c) {
    if (p[c] > p[best]) best = c;
  }
  return best;
}

std::string Tensor::DebugString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ") [";
  const int64_t n = std::min(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << (*this)[i];
  }
  if (numel() > max_elems) os << ", ...";
  os << "]";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GR_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  // ikj order: streams B rows, keeps C row hot. With -O3 this vectorises.
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (m * k * n > (1 << 18))
#endif
  for (int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  GR_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor c(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // C[i,j] = sum_kk A[kk,i] * B[kk,j]; iterate kk outer for sequential reads.
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  GR_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (m * k * n > (1 << 18))
#endif
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor ColSum(const Tensor& a) {
  Tensor out(1, a.cols());
  float* po = out.data();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* pr = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) po[c] += pr[c];
  }
  return out;
}

Tensor RowSum(const Tensor& a) {
  Tensor out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* pr = a.row(r);
    float acc = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) acc += pr[c];
    out.at(r, 0) = acc;
  }
  return out;
}

}  // namespace tensor
}  // namespace graphrare

#include "tensor/tensor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <sstream>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/parallel.h"

// The tensor pool is compiled out under sanitizer builds so ASan sees every
// logical allocation / use-after-free instead of a recycled buffer.
#if defined(__SANITIZE_ADDRESS__)
#define GRAPHRARE_TENSOR_POOL_COMPILED_OUT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAPHRARE_TENSOR_POOL_COMPILED_OUT 1
#endif
#endif

namespace graphrare {
namespace tensor {

// ===================================================================
// TensorPool: thread-safe power-of-two free lists of float buffers.
// ===================================================================

namespace {

#ifndef GRAPHRARE_TENSOR_POOL_COMPILED_OUT

// Buffers below 4 KiB ride the regular allocator (small mallocs are cheap
// and pooling them would just add lock traffic).
constexpr size_t kMinPooledFloats = size_t{1} << 10;
constexpr size_t kMaxBucketBuffers = 16;
constexpr uint64_t kMaxCachedBytes = uint64_t{256} << 20;  // 256 MiB
constexpr int kNumBuckets = 40;  // capacities up to 2^39 floats

int FloorLog2(size_t n) {
  int b = 0;
  while (n >> 1) {
    n >>= 1;
    ++b;
  }
  return b;
}

int CeilLog2(size_t n) {
  const int b = FloorLog2(n);
  return (size_t{1} << b) == n ? b : b + 1;
}

// Multi-megabyte buffers (feature matrices, SpMM outputs) are gather
// targets for the sparse kernels, where 4 KiB pages cost a DTLB miss on
// nearly every CSR gather. Ask the kernel to back fresh large buffers
// with transparent huge pages (effective under THP "madvise" or "always"
// policies; silently a no-op elsewhere). Must run before first touch, so
// FreshBuffer reserves, advises, then resizes.
void MaybeAdviseHugePages(void* data, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr size_t kHugeAdviseBytes = size_t{2} << 20;
  constexpr uintptr_t kPageMask = 4095;
  if (bytes < kHugeAdviseBytes) return;
  const uintptr_t lo =
      (reinterpret_cast<uintptr_t>(data) + kPageMask) & ~kPageMask;
  const uintptr_t hi = (reinterpret_cast<uintptr_t>(data) + bytes) & ~kPageMask;
  if (hi > lo) madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)data;
  (void)bytes;
#endif
}

std::vector<float> FreshBuffer(size_t n) {
  std::vector<float> buf;
  buf.reserve(n);
  MaybeAdviseHugePages(buf.data(), buf.capacity() * sizeof(float));
  buf.resize(n);  // value-initialises (zero) after the advice
  return buf;
}

class PoolImpl {
 public:
  // Leaked singleton: Tensors with static storage duration may be destroyed
  // after any function-local static pool, so the pool must never die.
  static PoolImpl& Get() {
    static PoolImpl* pool = new PoolImpl();
    return *pool;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Returns a size-n buffer with unspecified contents. `zeroed` requests a
  /// zero fill (skipped when the buffer is freshly value-initialised).
  std::vector<float> Acquire(size_t n, bool zeroed) {
    if (n >= kMinPooledFloats && enabled()) {
      std::unique_lock<std::mutex> lock(mu_);
      auto& bucket = buckets_[static_cast<size_t>(CeilLog2(n))];
      if (!bucket.empty()) {
        std::vector<float> buf = std::move(bucket.back());
        bucket.pop_back();
        ++stats_.hits;
        stats_.cached_bytes -= buf.capacity() * sizeof(float);
        lock.unlock();
        buf.resize(n);  // shrink or zero-extend within capacity
        if (zeroed) std::fill(buf.begin(), buf.end(), 0.0f);
        return buf;
      }
      ++stats_.misses;
    }
    return FreshBuffer(n);  // value-initialised (zeroed)
  }

  void Release(std::vector<float> buf) {
    const size_t cap = buf.capacity();
    if (cap < kMinPooledFloats) return;  // too small to track
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled()) {
      ++stats_.drops;
      return;
    }
    auto& bucket = buckets_[static_cast<size_t>(FloorLog2(cap))];
    const uint64_t bytes = cap * sizeof(float);
    if (bucket.size() >= kMaxBucketBuffers ||
        stats_.cached_bytes + bytes > kMaxCachedBytes) {
      ++stats_.drops;
      return;
    }
    bucket.push_back(std::move(buf));
    ++stats_.returns;
    stats_.cached_bytes += bytes;
  }

  TensorPool::Stats GetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& bucket : buckets_) bucket.clear();
    stats_.cached_bytes = 0;
  }

 private:
  std::atomic<bool> enabled_{true};
  std::mutex mu_;
  TensorPool::Stats stats_;
  // buckets_[b] holds buffers whose capacity is in [2^b, 2^(b+1)); any of
  // them serves an Acquire(n) with CeilLog2(n) == b since 2^b >= n.
  std::array<std::vector<std::vector<float>>, kNumBuckets> buckets_;
};

#endif  // !GRAPHRARE_TENSOR_POOL_COMPILED_OUT

}  // namespace

namespace internal {

#ifdef GRAPHRARE_TENSOR_POOL_COMPILED_OUT

std::vector<float> PoolAcquireZeroed(size_t n) {
  return std::vector<float>(n);
}
std::vector<float> PoolAcquireRaw(size_t n) { return std::vector<float>(n); }
std::vector<float> PoolAcquireCopy(const std::vector<float>& src) {
  return src;
}
void PoolRelease(std::vector<float> buf) { buf.clear(); }

#else

std::vector<float> PoolAcquireZeroed(size_t n) {
  return PoolImpl::Get().Acquire(n, /*zeroed=*/true);
}

std::vector<float> PoolAcquireRaw(size_t n) {
  return PoolImpl::Get().Acquire(n, /*zeroed=*/false);
}

std::vector<float> PoolAcquireCopy(const std::vector<float>& src) {
  std::vector<float> buf = PoolImpl::Get().Acquire(src.size(),
                                                   /*zeroed=*/false);
  std::copy(src.begin(), src.end(), buf.begin());
  return buf;
}

void PoolRelease(std::vector<float> buf) {
  if (buf.capacity() == 0) return;
  PoolImpl::Get().Release(std::move(buf));
}

#endif  // GRAPHRARE_TENSOR_POOL_COMPILED_OUT

}  // namespace internal

bool TensorPool::Enabled() {
#ifdef GRAPHRARE_TENSOR_POOL_COMPILED_OUT
  return false;
#else
  return PoolImpl::Get().enabled();
#endif
}

void TensorPool::SetEnabled(bool enabled) {
#ifdef GRAPHRARE_TENSOR_POOL_COMPILED_OUT
  (void)enabled;
#else
  PoolImpl::Get().set_enabled(enabled);
  if (!enabled) PoolImpl::Get().Clear();
#endif
}

TensorPool::Stats TensorPool::GetStats() {
#ifdef GRAPHRARE_TENSOR_POOL_COMPILED_OUT
  return Stats{};
#else
  return PoolImpl::Get().GetStats();
#endif
}

void TensorPool::Clear() {
#ifndef GRAPHRARE_TENSOR_POOL_COMPILED_OUT
  PoolImpl::Get().Clear();
#endif
}

// ===================================================================
// Tensor basics
// ===================================================================

Tensor Tensor::Randn(int64_t rows, int64_t cols, Rng* rng, float stddev) {
  GR_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Normal()) * stddev;
  }
  return t;
}

Tensor Tensor::Rand(int64_t rows, int64_t cols, Rng* rng, float lo, float hi) {
  GR_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Rand(fan_in, fan_out, rng, -limit, limit);
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

namespace {

// Elementwise kernels are memory-bound; below this many elements a thread
// team costs more than it saves.
constexpr int64_t kElementwiseGrain = int64_t{1} << 15;

}  // namespace

void Tensor::AddInPlace(const Tensor& other) {
  GR_CHECK(SameShape(other)) << "AddInPlace shape mismatch: " << rows_ << "x"
                             << cols_ << " vs " << other.rows_ << "x"
                             << other.cols_;
  const float* src = other.data();
  float* dst = data();
  ParallelFor(numel(), kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) dst[i] += src[i];
  });
}

void Tensor::AxpyInPlace(float alpha, const Tensor& other) {
  GR_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  ParallelFor(numel(), kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) dst[i] += alpha * src[i];
  });
}

void Tensor::ScaleInPlace(float alpha) {
  float* dst = data();
  ParallelFor(numel(), kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) dst[i] *= alpha;
  });
}

void Tensor::MulInPlace(const Tensor& other) {
  GR_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  ParallelFor(numel(), kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) dst[i] *= src[i];
  });
}

Tensor Tensor::Transposed() const {
  Tensor t(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

bool Tensor::AllClose(const Tensor& other, float atol, float rtol) const {
  if (!SameShape(other)) return false;
  for (int64_t i = 0; i < numel(); ++i) {
    const float a = (*this)[i];
    const float b = other[i];
    if (std::abs(a - b) > atol + rtol * std::abs(b)) return false;
  }
  return true;
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (int64_t i = 0; i < numel(); ++i) m = std::max(m, std::abs((*this)[i]));
  return m;
}

double Tensor::SumDouble() const {
  // Neumaier's variant of Kahan summation on a double accumulator: the
  // compensation term survives even when a large addend cancels the running
  // sum (plain Kahan folds the correction into the next addend, where it
  // can be swallowed by the cancellation itself).
  double sum = 0.0;
  double comp = 0.0;
  for (int64_t i = 0; i < numel(); ++i) {
    const double v = static_cast<double>((*this)[i]);
    const double t = sum + v;
    if (std::abs(sum) >= std::abs(v)) {
      comp += (sum - t) + v;
    } else {
      comp += (v - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

float Tensor::Sum() const { return static_cast<float>(SumDouble()); }

float Tensor::Mean() const {
  GR_CHECK_GT(numel(), 0);
  return static_cast<float>(SumDouble() / static_cast<double>(numel()));
}

bool Tensor::HasNonFinite() const {
  for (int64_t i = 0; i < numel(); ++i) {
    if (!std::isfinite((*this)[i])) return true;
  }
  return false;
}

int64_t Tensor::ArgMaxRow(int64_t r) const {
  GR_CHECK(r >= 0 && r < rows_);
  GR_CHECK_GT(cols_, 0);
  const float* p = row(r);
  int64_t best = 0;
  for (int64_t c = 1; c < cols_; ++c) {
    if (p[c] > p[best]) best = c;
  }
  return best;
}

std::string Tensor::DebugString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ") [";
  const int64_t n = std::min(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << (*this)[i];
  }
  if (numel() > max_elems) os << ", ...";
  os << "]";
  return os.str();
}

// ===================================================================
// Blocked, register-tiled GEMM
// ===================================================================
//
// Layout (GotoBLAS-style GEBP without a k-cut):
//   * B is packed once into kNr-wide column panels, k-major, zero-padded to
//     kNr, so the micro-kernel streams it contiguously.
//   * C is walked in kMc-row blocks (one OpenMP task each; threads own
//     disjoint C rows). Each block packs its A rows into kMr-high
//     micro-panels, k-major.
//   * The micro-kernel holds a kMr x kNr accumulator block in registers and
//     runs the FULL k extent for it. Keeping k un-split is what makes the
//     result bitwise equal to the naive triple loop: every C[i,j] is a plain
//     ascending-k accumulation, so blocking and thread count cannot change
//     a single bit.
//
// MatMulTransA cannot keep k un-split (k is the reduction axis it
// parallelises over), so it commits to the fixed-block contract documented
// in tensor.h instead.

namespace {

constexpr int64_t kMr = 4;  // micro-tile rows (register blocking)
constexpr int64_t kNr = 8;  // micro-tile cols (one AVX2 / two SSE vectors)

// GCC/Clang generic vector type: one micro-tile row of C accumulates in a
// single 8-lane register. Lanes are independent C elements, so vectorising
// over j never reorders any element's k-accumulation. On ISAs without
// 256-bit registers the compiler lowers this to register pairs — same
// semantics, still far ahead of the scalar loop.
typedef float V8f __attribute__((vector_size(32)));
constexpr int64_t kMc = 64; // C rows per parallel task / A pack block
// Below this many multiply-adds the packing overhead beats the win.
constexpr int64_t kSmallGemmFlops = int64_t{1} << 15;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// RAII pooled scratch buffer (contents unspecified until written).
class Scratch {
 public:
  explicit Scratch(size_t n) : buf_(internal::PoolAcquireRaw(n)) {}
  ~Scratch() { internal::PoolRelease(std::move(buf_)); }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  float* data() { return buf_.data(); }

 private:
  std::vector<float> buf_;
};

/// ikj triple loop (ascending-k accumulation per element). C must be
/// zero-initialised. The av == 0 skip is exact: it can only flip the sign
/// of a zero, which every comparison in the library treats as equal.
void NaiveMatMulInto(const float* pa, const float* pb, float* pc, int64_t m,
                     int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

/// kij loop for C = A^T B over rows [0, k) of A (k x m) and B (k x n).
/// Ascending-k accumulation per element; C must be zero-initialised.
void NaiveTransAInto(const float* pa, const float* pb, float* pc, int64_t k,
                     int64_t m, int64_t n) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

/// Packs B (k x n, row stride ldb) into ceil(n / kNr) panels:
/// packed[p * k * kNr + kk * kNr + j] = B[kk][p * kNr + j], zero-padded.
void PackB(const float* b, int64_t k, int64_t n, int64_t ldb, float* packed) {
  const int64_t panels = CeilDiv(n, kNr);
  ParallelFor(panels, 8, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t j0 = p * kNr;
      const int64_t jw = std::min(kNr, n - j0);
      float* dst = packed + p * k * kNr;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* src = b + kk * ldb + j0;
        for (int64_t j = 0; j < jw; ++j) dst[j] = src[j];
        for (int64_t j = jw; j < kNr; ++j) dst[j] = 0.0f;
        dst += kNr;
      }
    }
  });
}

/// Packs B^T where B is (n x k) row-major: the panel layout above applied
/// to the logical (k x n) transpose, read column-wise from B's rows.
void PackBTransposed(const float* b, int64_t k, int64_t n, int64_t ldb,
                     float* packed) {
  const int64_t panels = CeilDiv(n, kNr);
  ParallelFor(panels, 8, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t j0 = p * kNr;
      const int64_t jw = std::min(kNr, n - j0);
      float* dst = packed + p * k * kNr;
      for (int64_t kk = 0; kk < k; ++kk) {
        for (int64_t j = 0; j < jw; ++j) dst[j] = b[(j0 + j) * ldb + kk];
        for (int64_t j = jw; j < kNr; ++j) dst[j] = 0.0f;
        dst += kNr;
      }
    }
  });
}

/// Packs `mb` rows of A (row stride lda) into kMr-high micro-panels:
/// packed[t * k * kMr + kk * kMr + r] = A[t * kMr + r][kk], zero-padded.
void PackA(const float* a, int64_t mb, int64_t k, int64_t lda, float* packed) {
  const int64_t tiles = CeilDiv(mb, kMr);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t r0 = t * kMr;
    const int64_t rh = std::min(kMr, mb - r0);
    float* dst = packed + t * k * kMr;
    for (int64_t kk = 0; kk < k; ++kk) {
      for (int64_t r = 0; r < rh; ++r) dst[r] = a[(r0 + r) * lda + kk];
      for (int64_t r = rh; r < kMr; ++r) dst[r] = 0.0f;
      dst += kMr;
    }
  }
}

/// Packs a k-major block At (kb x m, row stride lda — A^T as stored by
/// MatMulTransA's inputs) into kMr-high micro-panels with exactly the
/// layout PackA produces for the equivalent (m x kb) row-major block:
/// packed[t * kb * kMr + kk * kMr + r] = At[kk][t * kMr + r]. Reads each
/// k-row contiguously, so no strided full-block transpose is needed first.
void PackATransposed(const float* at, int64_t kb, int64_t m, int64_t lda,
                     float* packed) {
  const int64_t tiles = CeilDiv(m, kMr);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t r0 = t * kMr;
    const int64_t rh = std::min(kMr, m - r0);
    float* dst = packed + t * kb * kMr;
    for (int64_t kk = 0; kk < kb; ++kk) {
      const float* src = at + kk * lda + r0;
      for (int64_t r = 0; r < rh; ++r) dst[r] = src[r];
      for (int64_t r = rh; r < kMr; ++r) dst[r] = 0.0f;
      dst += kMr;
    }
  }
}

/// One kMr x kNr C tile over the full k extent, accumulators in registers.
/// Writes the rh x jw live corner of the tile (padded lanes are discarded).
/// Loads/stores go through memcpy so vector values never cross a function
/// boundary (keeps non-AVX builds free of -Wpsabi ABI warnings).
void MicroKernel(const float* ap, const float* bp, int64_t k, int64_t rh,
                 int64_t jw, float* c, int64_t ldc) {
  V8f a0 = {0, 0, 0, 0, 0, 0, 0, 0};
  V8f a1 = a0, a2 = a0, a3 = a0;
  static_assert(kMr == 4 && kNr == 8, "micro-kernel is written for 4x8");
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* ar = ap + kk * kMr;
    V8f b;
    std::memcpy(&b, bp + kk * kNr, sizeof(b));
    a0 += ar[0] * b;
    a1 += ar[1] * b;
    a2 += ar[2] * b;
    a3 += ar[3] * b;
  }
  float tmp[kMr][kNr];
  std::memcpy(tmp[0], &a0, sizeof(a0));
  std::memcpy(tmp[1], &a1, sizeof(a1));
  std::memcpy(tmp[2], &a2, sizeof(a2));
  std::memcpy(tmp[3], &a3, sizeof(a3));
  if (rh == kMr && jw == kNr) {
    for (int64_t r = 0; r < kMr; ++r) {
      std::memcpy(c + r * ldc, tmp[r], sizeof(tmp[r]));
    }
    return;
  }
  for (int64_t r = 0; r < rh; ++r) {
    for (int64_t j = 0; j < jw; ++j) {
      c[r * ldc + j] = tmp[r][j];
    }
  }
}

/// C (m x n, row stride n) = A (m x k, row stride lda) * packed B.
/// `parallel` toggles the OpenMP row-block fan-out (callers already inside
/// a parallel region pass false).
void BlockedGemm(const float* a, int64_t lda, const float* bpacked, int64_t m,
                 int64_t k, int64_t n, float* c, bool parallel) {
  const int64_t bpanels = CeilDiv(n, kNr);
  ParallelFor(m, parallel ? kMc : m, [&](int64_t i0, int64_t i1) {
    const int64_t mb = i1 - i0;
    const int64_t atiles = CeilDiv(mb, kMr);
    Scratch apacked(static_cast<size_t>(atiles * kMr * k));
    PackA(a + i0 * lda, mb, k, lda, apacked.data());
    for (int64_t t = 0; t < atiles; ++t) {
      const int64_t r0 = i0 + t * kMr;
      const int64_t rh = std::min(kMr, m - r0);
      const float* ap = apacked.data() + t * k * kMr;
      for (int64_t p = 0; p < bpanels; ++p) {
        const int64_t j0 = p * kNr;
        const int64_t jw = std::min(kNr, n - j0);
        MicroKernel(ap, bpacked + p * k * kNr, k, rh, jw, c + r0 * n + j0, n);
      }
    }
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GR_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  if (m == 0 || k == 0 || n == 0) return c;
  if (m * k * n < kSmallGemmFlops) {
    NaiveMatMulInto(a.data(), b.data(), c.data(), m, k, n);
    return c;
  }
  Scratch bpacked(static_cast<size_t>(CeilDiv(n, kNr) * kNr * k));
  PackB(b.data(), k, n, n, bpacked.data());
  BlockedGemm(a.data(), k, bpacked.data(), m, k, n, c.data(),
              /*parallel=*/true);
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  GR_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  if (k <= kTransAKBlock) {
    // Single reduction block: the contract degenerates to the plain kij
    // loop (ascending-k accumulation).
    Tensor c(m, n);
    NaiveTransAInto(a.data(), b.data(), c.data(), k, m, n);
    return c;
  }
  // Fixed k-blocks, partials combined in ascending block order (see
  // tensor.h): bitwise invariant to OMP_NUM_THREADS and OpenMP-off builds.
  return ParallelReduce<Tensor>(
      k, kTransAKBlock, Tensor(m, n),
      [&](int64_t k0, int64_t k1) {
        const int64_t kb = k1 - k0;
        const float* ablk = a.data() + k0 * m;
        const float* bblk = b.data() + k0 * n;
        Tensor partial(m, n);
        if (m * kb * n < kSmallGemmFlops) {
          NaiveTransAInto(ablk, bblk, partial.data(), kb, m, n);
          return partial;
        }
        // Pack the k-major A block straight into micro-panels (one
        // contiguous read per k-row) instead of re-striding it through a
        // full transpose and a second PackA pass. The packed bytes — and
        // hence the register-tiled core's per-element ascending-k sums —
        // are identical either way.
        const int64_t atiles = CeilDiv(m, kMr);
        const int64_t bpanels = CeilDiv(n, kNr);
        Scratch apacked(static_cast<size_t>(atiles * kMr * kb));
        PackATransposed(ablk, kb, m, m, apacked.data());
        Scratch bpacked(static_cast<size_t>(bpanels * kNr * kb));
        PackB(bblk, kb, n, n, bpacked.data());
        for (int64_t t = 0; t < atiles; ++t) {
          const int64_t r0 = t * kMr;
          const int64_t rh = std::min(kMr, m - r0);
          const float* ap = apacked.data() + t * kb * kMr;
          for (int64_t p = 0; p < bpanels; ++p) {
            const int64_t j0 = p * kNr;
            const int64_t jw = std::min(kNr, n - j0);
            MicroKernel(ap, bpacked.data() + p * kb * kNr, kb, rh, jw,
                        partial.data() + r0 * n + j0, n);
          }
        }
        return partial;
      },
      [](Tensor acc, Tensor partial) {
        acc.AddInPlace(partial);
        return acc;
      });
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  GR_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  if (m == 0 || k == 0 || n == 0) return c;
  if (m * k * n < kSmallGemmFlops) {
    // Row-by-row dot products: ascending-k accumulation per element.
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
    return c;
  }
  // Pack B^T once, then the standard blocked core; per-element accumulation
  // order is identical to the dot-product loop above.
  Scratch bpacked(static_cast<size_t>(CeilDiv(n, kNr) * kNr * k));
  PackBTransposed(b.data(), k, n, k, bpacked.data());
  BlockedGemm(a.data(), k, bpacked.data(), m, k, n, c.data(),
              /*parallel=*/true);
  return c;
}

Tensor ColSum(const Tensor& a) {
  const int64_t rows = a.rows();
  const int64_t cols = a.cols();
  // Deterministic fixed-block reduction over row blocks (see tensor.h).
  return ParallelReduce<Tensor>(
      rows, kColSumRowBlock, Tensor(1, cols),
      [&](int64_t r0, int64_t r1) {
        Tensor partial(1, cols);
        float* po = partial.data();
        for (int64_t r = r0; r < r1; ++r) {
          const float* pr = a.row(r);
          for (int64_t c = 0; c < cols; ++c) po[c] += pr[c];
        }
        return partial;
      },
      [](Tensor acc, Tensor partial) {
        acc.AddInPlace(partial);
        return acc;
      });
}

Tensor RowSum(const Tensor& a) {
  Tensor out(a.rows(), 1);
  float* po = out.data();
  // Per-row sums are independent (ascending-column order within each row),
  // so a static ParallelFor cannot change the result.
  ParallelFor(a.rows(), 512, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* pr = a.row(r);
      float acc = 0.0f;
      for (int64_t c = 0; c < a.cols(); ++c) acc += pr[c];
      po[r] = acc;
    }
  });
  return out;
}

}  // namespace tensor
}  // namespace graphrare

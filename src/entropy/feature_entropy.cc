#include "entropy/feature_entropy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace graphrare {
namespace entropy {

tensor::Tensor EmbedFeatures(const tensor::Tensor& features,
                             const FeatureEmbeddingOptions& options) {
  tensor::Tensor z = features;
  if (options.projection_dim > 0 && options.projection_dim < features.cols()) {
    Rng rng(options.seed);
    const float scale =
        1.0f / std::sqrt(static_cast<float>(options.projection_dim));
    tensor::Tensor proj = tensor::Tensor::Randn(
        features.cols(), options.projection_dim, &rng, scale);
    z = tensor::MatMul(features, proj);
  }
  if (options.l2_normalize) {
    for (int64_t r = 0; r < z.rows(); ++r) {
      float* row = z.row(r);
      double norm_sq = 0.0;
      for (int64_t c = 0; c < z.cols(); ++c) norm_sq += row[c] * row[c];
      const float inv =
          norm_sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm_sq)) : 0.0f;
      for (int64_t c = 0; c < z.cols(); ++c) row[c] *= inv;
    }
  }
  return z;
}

double EmbeddingDot(const tensor::Tensor& embeddings, int64_t v, int64_t u) {
  GR_DCHECK(v >= 0 && v < embeddings.rows());
  GR_DCHECK(u >= 0 && u < embeddings.rows());
  const float* pv = embeddings.row(v);
  const float* pu = embeddings.row(u);
  double dot = 0.0;
  for (int64_t c = 0; c < embeddings.cols(); ++c) dot += pv[c] * pu[c];
  return dot;
}

std::vector<double> FeatureEntropyForPairs(
    const tensor::Tensor& embeddings, const std::vector<NodePair>& pairs) {
  std::vector<double> logits;
  logits.reserve(pairs.size());
  for (const auto& [v, u] : pairs) {
    logits.push_back(EmbeddingDot(embeddings, v, u));
  }
  if (logits.empty()) return {};

  // log Z via log-sum-exp over the pair set.
  const double mx = *std::max_element(logits.begin(), logits.end());
  double sum_exp = 0.0;
  for (double s : logits) sum_exp += std::exp(s - mx);
  const double log_z = mx + std::log(sum_exp);

  std::vector<double> entropies;
  entropies.reserve(pairs.size());
  for (double s : logits) {
    const double log_p = s - log_z;   // always <= 0
    const double p = std::exp(log_p);
    entropies.push_back(-p * log_p);  // -P log P (Eq. 4)
  }
  return entropies;
}

}  // namespace entropy
}  // namespace graphrare

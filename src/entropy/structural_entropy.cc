#include "entropy/structural_entropy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace graphrare {
namespace entropy {

namespace {

constexpr double kLog2 = 0.6931471805599453;  // ln 2

inline double XLogX(double x) { return x > 0.0 ? x * std::log(x) : 0.0; }

}  // namespace

double JsDivergence(const std::vector<float>& p, const std::vector<float>& q) {
  const size_t n = std::max(p.size(), q.size());
  // JS(p,q) = H(m) - (H(p) + H(q))/2 in nats, converted to bits; zero tail
  // entries contribute nothing.
  double h_m = 0.0, h_p = 0.0, h_q = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pi = i < p.size() ? p[i] : 0.0;
    const double qi = i < q.size() ? q[i] : 0.0;
    const double mi = 0.5 * (pi + qi);
    h_m -= XLogX(mi);
    h_p -= XLogX(pi);
    h_q -= XLogX(qi);
  }
  const double js_nats = h_m - 0.5 * (h_p + h_q);
  double js_bits = js_nats / kLog2;
  // Clamp tiny negative rounding noise.
  if (js_bits < 0.0) js_bits = 0.0;
  if (js_bits > 1.0) js_bits = 1.0;
  return js_bits;
}

StructuralEntropyCalculator::StructuralEntropyCalculator(
    const graph::Graph& g) {
  sequences_.resize(static_cast<size_t>(g.num_nodes()));
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    std::vector<float> seq;
    seq.reserve(static_cast<size_t>(g.Degree(v)) + 1);
    seq.push_back(static_cast<float>(g.Degree(v)));
    for (const int64_t* p = g.NeighborsBegin(v); p != g.NeighborsEnd(v); ++p) {
      seq.push_back(static_cast<float>(g.Degree(*p)));
    }
    std::sort(seq.begin(), seq.end(), std::greater<float>());
    double total = 0.0;
    for (float d : seq) total += d;
    if (total > 0.0) {
      for (float& d : seq) d = static_cast<float>(d / total);
    } else {
      // Isolated node: degenerate one-point distribution.
      seq.assign(1, 1.0f);
    }
    sequences_[static_cast<size_t>(v)] = std::move(seq);
  }
}

double StructuralEntropyCalculator::Between(int64_t v, int64_t u) const {
  GR_CHECK(v >= 0 && v < static_cast<int64_t>(sequences_.size()));
  GR_CHECK(u >= 0 && u < static_cast<int64_t>(sequences_.size()));
  return 1.0 - JsDivergence(sequences_[static_cast<size_t>(v)],
                            sequences_[static_cast<size_t>(u)]);
}

}  // namespace entropy
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Node feature entropy (paper Eq. 4): pair probability from the softmax of
// embedding dot products over a pair set, turned into -P log P. Because
// P(z_v, z_u) << 1/e for any non-trivial pair set and -p log p is strictly
// increasing on (0, 1/e), ranking by feature entropy equals ranking by
// embedding similarity — matching the paper's reading that larger feature
// entropy means more similar features.
//
// The embedding function phi is a seeded random projection (an untrained
// MLP layer, matching the paper's one-off pre-training computation) plus
// optional L2 normalisation; phi = identity when projection_dim == 0.

#ifndef GRAPHRARE_ENTROPY_FEATURE_ENTROPY_H_
#define GRAPHRARE_ENTROPY_FEATURE_ENTROPY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace graphrare {
namespace entropy {

/// Pair of node ids.
using NodePair = std::pair<int64_t, int64_t>;

/// Options for the embedding function phi.
struct FeatureEmbeddingOptions {
  /// Output dimension of the random projection; 0 keeps raw features.
  int64_t projection_dim = 64;
  /// L2-normalise embeddings so dot products are cosine similarities.
  bool l2_normalize = true;
  uint64_t seed = 13;
};

/// Computes phi(X): random projection + L2 normalisation.
tensor::Tensor EmbedFeatures(const tensor::Tensor& features,
                             const FeatureEmbeddingOptions& options);

/// Computes feature entropies H_f for each pair, with the softmax
/// normaliser taken over exactly the given pair set (the paper's sparse
/// candidate-restricted computation). Numerically stable (log-sum-exp).
std::vector<double> FeatureEntropyForPairs(const tensor::Tensor& embeddings,
                                           const std::vector<NodePair>& pairs);

/// Raw embedding dot product <z_v, z_u> (ranking-equivalent fast path).
double EmbeddingDot(const tensor::Tensor& embeddings, int64_t v, int64_t u);

}  // namespace entropy
}  // namespace graphrare

#endif  // GRAPHRARE_ENTROPY_FEATURE_ENTROPY_H_

// Copyright 2026 The GraphRARE Authors.
//
// Node structural entropy (paper Eqs. 5-8): similarity of two nodes' local
// structures measured as 1 - JS divergence between their normalised,
// descending degree sequences (node degree + 1-hop neighbour degrees,
// zero-padded to a common length). JS uses log base 2, so values live in
// [0, 1]; H_s(v,u) = 1 means identical local degree profiles.

#ifndef GRAPHRARE_ENTROPY_STRUCTURAL_ENTROPY_H_
#define GRAPHRARE_ENTROPY_STRUCTURAL_ENTROPY_H_

#include <vector>

#include "graph/graph.h"

namespace graphrare {
namespace entropy {

/// Jensen-Shannon divergence between two discrete distributions given as
/// (possibly different-length) arrays; missing tail entries are zeros.
/// Inputs must be non-negative and sum to 1 (up to rounding). Log base 2.
double JsDivergence(const std::vector<float>& p, const std::vector<float>& q);

/// Precomputes every node's normalised degree sequence once, then answers
/// pairwise structural-entropy queries in O(len(v) + len(u)).
class StructuralEntropyCalculator {
 public:
  explicit StructuralEntropyCalculator(const graph::Graph& g);

  /// H_s(v, u) = 1 - JS(p(v), p(u)) in [0, 1]. Symmetric.
  double Between(int64_t v, int64_t u) const;

  /// The normalised descending degree sequence p(v) (Eq. 6), without the
  /// implicit zero padding.
  const std::vector<float>& Sequence(int64_t v) const {
    return sequences_[static_cast<size_t>(v)];
  }

 private:
  std::vector<std::vector<float>> sequences_;
};

}  // namespace entropy
}  // namespace graphrare

#endif  // GRAPHRARE_ENTROPY_STRUCTURAL_ENTROPY_H_

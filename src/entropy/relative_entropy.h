// Copyright 2026 The GraphRARE Authors.
//
// Node relative entropy (paper Eq. 9) and per-node entropy sequences
// (Sec. IV-A.4). H(v,u) = Hf~(v,u) + lambda * Hs(v,u), where Hf~ is the
// feature entropy min-max rescaled over the computed pair set so the two
// terms live on the same [0,1] scale and lambda acts as a true ratio knob.
//
// Built once before co-training (the paper computes entropy a single time;
// Table VI reports that cost separately). Remote candidates per node are
// its 2-hop neighbourhood (sampled down when huge) plus uniformly sampled
// remote nodes — the paper's sparse-computation note made concrete.

#ifndef GRAPHRARE_ENTROPY_RELATIVE_ENTROPY_H_
#define GRAPHRARE_ENTROPY_RELATIVE_ENTROPY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "entropy/feature_entropy.h"
#include "entropy/structural_entropy.h"
#include "graph/graph.h"
#include "graph/subgraph.h"

namespace graphrare {
namespace entropy {

/// Options of the relative-entropy index.
struct EntropyOptions {
  /// Mixing weight of structural entropy (Eq. 9). Table IV sweeps this.
  double lambda = 1.0;
  FeatureEmbeddingOptions embedding;
  /// Cap on 2-hop candidates per node (sampled without replacement beyond).
  int max_two_hop_candidates = 24;
  /// Extra uniformly sampled remote candidates per node (long-range reach
  /// beyond 2 hops, "the node entropy sequence can be constructed flexibly
  /// to cover the whole graph").
  int num_random_candidates = 8;
  uint64_t seed = 13;

  Status Validate() const;
};

/// A scored candidate.
struct ScoredNode {
  int64_t node;
  double entropy;
};

/// Per-node sequences used by the topology optimizer.
struct NodeSequences {
  /// Remote (non-adjacent) candidates in *descending* relative entropy:
  /// additions take a prefix of this list.
  std::vector<ScoredNode> remote;
  /// Current 1-hop neighbours in *ascending* relative entropy (most
  /// dissimilar first): deletions take a prefix of this list.
  std::vector<ScoredNode> neighbors;
};

/// Immutable index of per-node entropy sequences over a fixed graph.
class RelativeEntropyIndex {
 public:
  /// Computes the index: candidate generation, feature + structural
  /// entropies, per-node sequence sort.
  static Result<RelativeEntropyIndex> Build(const graph::Graph& g,
                                            const tensor::Tensor& features,
                                            const EntropyOptions& options);

  int64_t num_nodes() const {
    return static_cast<int64_t>(sequences_.size());
  }
  const NodeSequences& sequences(int64_t v) const {
    GR_CHECK(v >= 0 && v < num_nodes());
    return sequences_[static_cast<size_t>(v)];
  }
  double lambda() const { return lambda_; }

  /// Longest remote sequence over all nodes (bound for k_max).
  int64_t MaxRemoteLength() const;

  /// In-place shuffle of every sequence (the "GraphRARE without relative
  /// entropy" ablation, Table V row GCN-RA).
  void ShuffleSequences(Rng* rng);

  /// Block-scoped view: remaps every sequence into the block's local id
  /// space, dropping candidates outside the block. No entropies are
  /// recomputed, and the relative order of each sequence is preserved
  /// (the local<->global map is monotone, so even equal-entropy ties keep
  /// their node-id tie-break order). An identity block (nodes 0..N-1)
  /// reproduces this index exactly, which is what makes the full-graph
  /// topology env the B=1/full-fanout special case of the block env.
  RelativeEntropyIndex Restrict(const graph::Subgraph& block) const;

  /// Incremental refresh after a merge round: moves each endpoint of an
  /// added edge from the other endpoint's remote sequence into its
  /// neighbour sequence (and the reverse for removed edges), carrying the
  /// pairwise entropy score and reinserting at the canonical sorted
  /// position (remote: entropy desc, neighbours: entropy asc; ties break
  /// ascending node id). Pairs that were never scored at Build time are
  /// no-ops — the candidate universe is fixed, only the adjacency
  /// bucketing tracks the rewired graph. O(sum of touched sequence
  /// lengths); deterministic, independent of edit order within each list.
  void ApplyEdits(const std::vector<graph::Edge>& added,
                  const std::vector<graph::Edge>& removed);

 private:
  std::vector<NodeSequences> sequences_;
  double lambda_ = 1.0;
};

/// Dense pairwise relative-entropy matrix for small graphs (Fig. 8
/// visualisation and tests). Normaliser spans all N*(N-1)/2 pairs.
/// Aborts if g.num_nodes() > 4096.
tensor::Tensor DenseRelativeEntropyMatrix(const graph::Graph& g,
                                          const tensor::Tensor& features,
                                          const EntropyOptions& options);

}  // namespace entropy
}  // namespace graphrare

#endif  // GRAPHRARE_ENTROPY_RELATIVE_ENTROPY_H_

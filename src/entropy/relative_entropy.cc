#include "entropy/relative_entropy.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace graphrare {
namespace entropy {

namespace {

// Canonical sequence orders (shared by Build and ApplyEdits so incremental
// refresh lands candidates exactly where a full rebuild would put them).
bool RemoteOrder(const ScoredNode& a, const ScoredNode& b) {
  return a.entropy != b.entropy ? a.entropy > b.entropy : a.node < b.node;
}

bool NeighborOrder(const ScoredNode& a, const ScoredNode& b) {
  return a.entropy != b.entropy ? a.entropy < b.entropy : a.node < b.node;
}

// Removes `node` from `seq` (sorted by entropy, so lookup is a linear scan
// over a short list) and reports its carried score.
bool ExtractNode(std::vector<ScoredNode>* seq, int64_t node, double* score) {
  for (auto it = seq->begin(); it != seq->end(); ++it) {
    if (it->node == node) {
      *score = it->entropy;
      seq->erase(it);
      return true;
    }
  }
  return false;
}

void InsertSorted(std::vector<ScoredNode>* seq, ScoredNode s,
                  bool (*order)(const ScoredNode&, const ScoredNode&)) {
  seq->insert(std::lower_bound(seq->begin(), seq->end(), s, order), s);
}

}  // namespace

Status EntropyOptions::Validate() const {
  if (lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  if (max_two_hop_candidates < 0 || num_random_candidates < 0) {
    return Status::InvalidArgument("candidate counts must be non-negative");
  }
  if (max_two_hop_candidates + num_random_candidates == 0) {
    return Status::InvalidArgument(
        "at least one candidate source must be enabled");
  }
  return Status::OK();
}

Result<RelativeEntropyIndex> RelativeEntropyIndex::Build(
    const graph::Graph& g, const tensor::Tensor& features,
    const EntropyOptions& options) {
  GR_RETURN_IF_ERROR(options.Validate());
  if (features.rows() != g.num_nodes()) {
    return Status::InvalidArgument("features rows != num_nodes");
  }
  const int64_t n = g.num_nodes();
  Rng rng(options.seed);

  const tensor::Tensor z = EmbedFeatures(features, options.embedding);
  StructuralEntropyCalculator structural(g);

  // --- Candidate generation: per-node remote candidates + 1-hop pairs. ---
  std::vector<NodePair> pairs;            // all (v, candidate) pairs
  std::vector<int64_t> pair_owner_begin;  // per node: offset into `pairs`
  std::vector<int64_t> remote_count;      // per node: #remote pairs
  pair_owner_begin.reserve(static_cast<size_t>(n) + 1);
  remote_count.reserve(static_cast<size_t>(n));

  std::unordered_set<int64_t> taken;
  for (int64_t v = 0; v < n; ++v) {
    pair_owner_begin.push_back(static_cast<int64_t>(pairs.size()));
    taken.clear();
    taken.insert(v);
    for (const int64_t* p = g.NeighborsBegin(v); p != g.NeighborsEnd(v); ++p) {
      taken.insert(*p);
    }

    // 2-hop candidates (sampled down when large).
    std::vector<int64_t> two_hop;
    for (const int64_t* p = g.NeighborsBegin(v); p != g.NeighborsEnd(v); ++p) {
      for (const int64_t* q = g.NeighborsBegin(*p); q != g.NeighborsEnd(*p);
           ++q) {
        if (!taken.count(*q)) {
          taken.insert(*q);
          two_hop.push_back(*q);
        }
      }
    }
    if (static_cast<int>(two_hop.size()) > options.max_two_hop_candidates) {
      // Sample without replacement, deterministically.
      std::vector<int64_t> picks = rng.SampleWithoutReplacement(
          static_cast<int64_t>(two_hop.size()),
          options.max_two_hop_candidates);
      std::vector<int64_t> sampled;
      sampled.reserve(picks.size());
      for (int64_t i : picks) sampled.push_back(two_hop[static_cast<size_t>(i)]);
      two_hop = std::move(sampled);
    }

    // Uniform remote candidates (anywhere in the graph).
    std::vector<int64_t> random_remote;
    int attempts = 0;
    while (static_cast<int>(random_remote.size()) <
               options.num_random_candidates &&
           attempts < options.num_random_candidates * 20) {
      ++attempts;
      const int64_t c = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(n)));
      if (!taken.count(c)) {
        taken.insert(c);
        random_remote.push_back(c);
      }
    }

    int64_t remote = 0;
    for (int64_t c : two_hop) {
      pairs.emplace_back(v, c);
      ++remote;
    }
    for (int64_t c : random_remote) {
      pairs.emplace_back(v, c);
      ++remote;
    }
    remote_count.push_back(remote);
    // 1-hop pairs (for the deletion sequence).
    for (const int64_t* p = g.NeighborsBegin(v); p != g.NeighborsEnd(v); ++p) {
      pairs.emplace_back(v, *p);
    }
  }
  pair_owner_begin.push_back(static_cast<int64_t>(pairs.size()));

  // --- Feature entropy over the whole pair set, then min-max rescale. ---
  std::vector<double> hf = FeatureEntropyForPairs(z, pairs);
  if (!hf.empty()) {
    const auto [mn_it, mx_it] = std::minmax_element(hf.begin(), hf.end());
    const double mn = *mn_it, mx = *mx_it;
    const double range = mx - mn;
    for (double& h : hf) {
      h = range > 0.0 ? (h - mn) / range : 0.5;
    }
  }

  // --- Assemble sequences. ---
  RelativeEntropyIndex index;
  index.lambda_ = options.lambda;
  index.sequences_.resize(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    NodeSequences& seq = index.sequences_[static_cast<size_t>(v)];
    const int64_t begin = pair_owner_begin[static_cast<size_t>(v)];
    const int64_t end = pair_owner_begin[static_cast<size_t>(v) + 1];
    const int64_t n_remote = remote_count[static_cast<size_t>(v)];
    for (int64_t i = begin; i < end; ++i) {
      const int64_t u = pairs[static_cast<size_t>(i)].second;
      const double h = hf[static_cast<size_t>(i)] +
                       options.lambda * structural.Between(v, u);
      if (i - begin < n_remote) {
        seq.remote.push_back({u, h});
      } else {
        seq.neighbors.push_back({u, h});
      }
    }
    std::sort(seq.remote.begin(), seq.remote.end(), RemoteOrder);
    std::sort(seq.neighbors.begin(), seq.neighbors.end(), NeighborOrder);
  }
  return index;
}

int64_t RelativeEntropyIndex::MaxRemoteLength() const {
  int64_t mx = 0;
  for (const auto& s : sequences_) {
    mx = std::max(mx, static_cast<int64_t>(s.remote.size()));
  }
  return mx;
}

RelativeEntropyIndex RelativeEntropyIndex::Restrict(
    const graph::Subgraph& block) const {
  RelativeEntropyIndex out;
  out.lambda_ = lambda_;
  out.sequences_.resize(block.nodes.size());
  for (size_t l = 0; l < block.nodes.size(); ++l) {
    const int64_t global = block.nodes[l];
    GR_CHECK(global >= 0 && global < num_nodes())
        << "Restrict: block node outside the indexed graph";
    const NodeSequences& src = sequences_[static_cast<size_t>(global)];
    NodeSequences& dst = out.sequences_[l];
    dst.remote.reserve(src.remote.size());
    for (const ScoredNode& s : src.remote) {
      const int64_t local = block.GlobalToLocal(s.node);
      if (local >= 0) dst.remote.push_back({local, s.entropy});
    }
    dst.neighbors.reserve(src.neighbors.size());
    for (const ScoredNode& s : src.neighbors) {
      const int64_t local = block.GlobalToLocal(s.node);
      if (local >= 0) dst.neighbors.push_back({local, s.entropy});
    }
  }
  return out;
}

void RelativeEntropyIndex::ApplyEdits(const std::vector<graph::Edge>& added,
                                      const std::vector<graph::Edge>& removed) {
  const auto move_pair = [this](int64_t a, int64_t b, bool to_neighbors) {
    if (a < 0 || a >= num_nodes() || b < 0 || b >= num_nodes()) return;
    NodeSequences& seq = sequences_[static_cast<size_t>(a)];
    std::vector<ScoredNode>& from = to_neighbors ? seq.remote : seq.neighbors;
    std::vector<ScoredNode>& to = to_neighbors ? seq.neighbors : seq.remote;
    double score = 0.0;
    if (!ExtractNode(&from, b, &score)) return;  // pair never scored: no-op
    InsertSorted(&to, {b, score}, to_neighbors ? NeighborOrder : RemoteOrder);
  };
  for (const graph::Edge& e : added) {
    move_pair(e.first, e.second, /*to_neighbors=*/true);
    move_pair(e.second, e.first, /*to_neighbors=*/true);
  }
  for (const graph::Edge& e : removed) {
    move_pair(e.first, e.second, /*to_neighbors=*/false);
    move_pair(e.second, e.first, /*to_neighbors=*/false);
  }
}

void RelativeEntropyIndex::ShuffleSequences(Rng* rng) {
  GR_CHECK(rng != nullptr);
  for (auto& s : sequences_) {
    rng->Shuffle(&s.remote);
    rng->Shuffle(&s.neighbors);
  }
}

tensor::Tensor DenseRelativeEntropyMatrix(const graph::Graph& g,
                                          const tensor::Tensor& features,
                                          const EntropyOptions& options) {
  GR_CHECK_OK(options.Validate());
  const int64_t n = g.num_nodes();
  GR_CHECK_LE(n, 4096) << "dense entropy matrix limited to small graphs";
  GR_CHECK_EQ(features.rows(), n);

  const tensor::Tensor z = EmbedFeatures(features, options.embedding);
  StructuralEntropyCalculator structural(g);

  std::vector<NodePair> pairs;
  pairs.reserve(static_cast<size_t>(n * (n - 1) / 2));
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t u = v + 1; u < n; ++u) pairs.emplace_back(v, u);
  }
  std::vector<double> hf = FeatureEntropyForPairs(z, pairs);
  if (!hf.empty()) {
    const auto [mn_it, mx_it] = std::minmax_element(hf.begin(), hf.end());
    const double mn = *mn_it, range = *mx_it - mn;
    for (double& h : hf) h = range > 0.0 ? (h - mn) / range : 0.5;
  }

  tensor::Tensor m(n, n);
  size_t k = 0;
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t u = v + 1; u < n; ++u, ++k) {
      const float h = static_cast<float>(
          hf[k] + options.lambda * structural.Between(v, u));
      m.at(v, u) = h;
      m.at(u, v) = h;
    }
  }
  return m;
}

}  // namespace entropy
}  // namespace graphrare

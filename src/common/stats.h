// Copyright 2026 The GraphRARE Authors.
//
// Tiny order-statistics helpers shared by the serving daemon and the
// throughput benches (latency percentiles).

#ifndef GRAPHRARE_COMMON_STATS_H_
#define GRAPHRARE_COMMON_STATS_H_

#include <algorithm>
#include <vector>

namespace graphrare {

/// Nearest-rank percentile of an ascending-sorted sample; p in [0, 1].
/// Returns 0 for an empty sample.
inline double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_STATS_H_

// Copyright 2026 The GraphRARE Authors.
//
// Order-statistics helpers shared by the serving daemon, the throughput
// benches, and the HTTP tier's /metrics endpoint. One place owns the
// percentile math so all three report the same numbers for the same
// samples.

#ifndef GRAPHRARE_COMMON_STATS_H_
#define GRAPHRARE_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace graphrare {

/// Nearest-rank percentile of an ascending-sorted sample. p is clamped to
/// [0, 1]; returns 0 for an empty sample and the element itself for a
/// single-element sample.
inline double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::max(0.0, std::min(1.0, p));
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// The percentile set every latency report in the repo prints. All fields
/// are 0 when count == 0.
struct LatencySummary {
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarises a sample (any order; sorted internally). Takes the vector by
/// value so callers keep their recording order.
inline LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = static_cast<int64_t>(samples.size());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = Percentile(samples, 0.50);
  s.p90 = Percentile(samples, 0.90);
  s.p95 = Percentile(samples, 0.95);
  s.p99 = Percentile(samples, 0.99);
  s.max = samples.back();
  return s;
}

/// Thread-safe latency sample sink for long-lived servers. Keeps an exact
/// sample up to `capacity`, then switches to uniform reservoir sampling so
/// memory stays bounded while the percentile estimate keeps tracking the
/// full stream. The total observation count is exact either way.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 4096) : capacity_(capacity) {
    if (capacity_ == 0) capacity_ = 1;
  }

  void Record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    ++observed_;
    if (samples_.size() < capacity_) {
      samples_.push_back(value);
      return;
    }
    // Vitter's algorithm R: keep each of the `observed_` values with
    // probability capacity / observed.
    rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t slot = (rng_state_ >> 33) % observed_;
    if (slot < capacity_) samples_[static_cast<size_t>(slot)] = value;
  }

  /// Percentiles of the retained sample; `count` is the exact number of
  /// Record calls, which can exceed the sample size once the reservoir
  /// is full.
  LatencySummary Summary() const {
    std::lock_guard<std::mutex> lock(mu_);
    LatencySummary s = Summarize(samples_);
    s.count = static_cast<int64_t>(observed_);
    return s;
  }

  int64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(observed_);
  }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t observed_ = 0;
  uint64_t rng_state_ = 0x853C49E6748FEA9BULL;
  std::vector<double> samples_;
};

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_STATS_H_

// Copyright 2026 The GraphRARE Authors.
//
// Deterministic random number generation. Every stochastic component in the
// library takes an explicit Rng so experiments are reproducible bit-for-bit
// across runs and platforms (std::mt19937 distributions are not portable).

#ifndef GRAPHRARE_COMMON_RNG_H_
#define GRAPHRARE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace graphrare {

/// xoshiro256** seeded via SplitMix64. Fast, high-quality, tiny state.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
    has_cached_normal_ = false;
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    GR_DCHECK(n > 0);
    // Lemire's nearly-divisionless method would be faster; modulo bias is
    // negligible for n << 2^64 and keeps the stream simple to reason about.
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    GR_DCHECK(hi >= lo);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller (cached pair).
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = Uniform();
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (partial Fisher-Yates).
  /// Returns all of [0, n) shuffled when k >= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k) {
    GR_DCHECK(n >= 0);
    std::vector<int64_t> pool(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
    if (k >= n) {
      Shuffle(&pool);
      return pool;
    }
    std::vector<int64_t> out;
    out.reserve(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      const int64_t j = UniformInt(i, n - 1);
      std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
      out.push_back(pool[static_cast<size_t>(i)]);
    }
    return out;
  }

  /// Samples an index from an (unnormalised, non-negative) weight vector.
  size_t Categorical(const std::vector<double>& weights) {
    GR_DCHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) total += w;
    GR_DCHECK(total > 0.0);
    double r = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator (for per-split / per-worker
  /// streams that must not interleave with the parent stream).
  Rng Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_RNG_H_

// Copyright 2026 The GraphRARE Authors.
//
// Status: error propagation without exceptions (RocksDB/Arrow idiom).
// Fallible public APIs return Status (or Result<T>, see result.h); programming
// errors use the GR_CHECK macros from check.h instead.

#ifndef GRAPHRARE_COMMON_STATUS_H_
#define GRAPHRARE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace graphrare {

/// Error categories used across the library. Keep the list short and generic;
/// details belong in the message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to move; the OK status carries
/// no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller (RocksDB idiom).
#define GR_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::graphrare::Status _gr_status = (expr);       \
    if (!_gr_status.ok()) return _gr_status;       \
  } while (0)

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_STATUS_H_

// Copyright 2026 The GraphRARE Authors.
//
// Wall-clock stopwatch for the runtime experiments (Table VI) and internal
// telemetry.

#ifndef GRAPHRARE_COMMON_STOPWATCH_H_
#define GRAPHRARE_COMMON_STOPWATCH_H_

#include <chrono>

namespace graphrare {

/// Measures elapsed wall time. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_STOPWATCH_H_

// Copyright 2026 The GraphRARE Authors.
//
// Small string helpers used by table printers and diagnostics.

#ifndef GRAPHRARE_COMMON_STRING_UTIL_H_
#define GRAPHRARE_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace graphrare {

/// printf-style formatting into a std::string.
inline std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

/// Joins elements with a separator.
inline std::string StrJoin(const std::vector<std::string>& parts,
                           const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

/// Parses a comma-separated integer list ("10,10,-1") into *out
/// (appending). Returns false — leaving *out in an unspecified state — on
/// empty tokens or any non-integer junk ("10x", "", "1,,2"). Range
/// validation is the caller's job; this only guarantees every token was a
/// well-formed integer.
inline bool ParseInt64List(const std::string& spec,
                           std::vector<int64_t>* out) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    char* parse_end = nullptr;
    const long long v = std::strtoll(token.c_str(), &parse_end, 10);
    if (token.empty() || parse_end != token.c_str() + token.size()) {
      return false;
    }
    out->push_back(static_cast<int64_t>(v));
    begin = end + 1;
  }
  return true;
}

/// Pads or truncates to a fixed width (left-aligned) for ASCII tables.
inline std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

inline std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_STRING_UTIL_H_

// Copyright 2026 The GraphRARE Authors.
//
// GR_CHECK family: invariant assertions that abort with a diagnostic.
// Used for programming errors (bad indices, shape mismatches); recoverable
// conditions use Status instead.

#ifndef GRAPHRARE_COMMON_CHECK_H_
#define GRAPHRARE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace graphrare {
namespace internal {

/// Accumulates the streamed message and aborts on destruction (at the end of
/// the failing full-expression).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  const CheckFailureStream& operator<<(const T& v) const {
    stream_ << v;
    return *this;
  }

 private:
  mutable std::ostringstream stream_;
};

/// glog-style voidify: `&` binds looser than `<<`, so the whole streamed
/// chain evaluates before being discarded, and the ternary in GR_CHECK stays
/// well-typed (both arms are void).
struct Voidify {
  void operator&(const CheckFailureStream&) const {}
};

}  // namespace internal
}  // namespace graphrare

#define GR_CHECK(cond)                                 \
  (cond) ? (void)0                                     \
         : ::graphrare::internal::Voidify() &          \
               ::graphrare::internal::CheckFailureStream("GR_CHECK", __FILE__, \
                                                         __LINE__, #cond)

#define GR_CHECK_OP_(op, a, b)                                                \
  ((a)op(b)) ? (void)0                                                        \
             : ::graphrare::internal::Voidify() &                             \
                   ::graphrare::internal::CheckFailureStream(                 \
                       "GR_CHECK", __FILE__, __LINE__, #a " " #op " " #b)     \
                       << "(" << (a) << " vs " << (b) << ") "

#define GR_CHECK_EQ(a, b) GR_CHECK_OP_(==, a, b)
#define GR_CHECK_NE(a, b) GR_CHECK_OP_(!=, a, b)
#define GR_CHECK_LT(a, b) GR_CHECK_OP_(<, a, b)
#define GR_CHECK_LE(a, b) GR_CHECK_OP_(<=, a, b)
#define GR_CHECK_GT(a, b) GR_CHECK_OP_(>, a, b)
#define GR_CHECK_GE(a, b) GR_CHECK_OP_(>=, a, b)

/// Aborts if a Status expression is not OK (for call sites that cannot fail
/// by construction).
#define GR_CHECK_OK(expr)                                               \
  do {                                                                  \
    const ::graphrare::Status _gr_st = (expr);                          \
    GR_CHECK(_gr_st.ok()) << _gr_st.ToString();                         \
  } while (0)

// Debug-only checks compile away in release builds (hot loops).
#ifdef NDEBUG
#define GR_DCHECK(cond) \
  while (false) GR_CHECK(cond)
#define GR_DCHECK_EQ(a, b) \
  while (false) GR_CHECK_EQ(a, b)
#define GR_DCHECK_LT(a, b) \
  while (false) GR_CHECK_LT(a, b)
#define GR_DCHECK_LE(a, b) \
  while (false) GR_CHECK_LE(a, b)
#else
#define GR_DCHECK(cond) GR_CHECK(cond)
#define GR_DCHECK_EQ(a, b) GR_CHECK_EQ(a, b)
#define GR_DCHECK_LT(a, b) GR_CHECK_LT(a, b)
#define GR_DCHECK_LE(a, b) GR_CHECK_LE(a, b)
#endif

#endif  // GRAPHRARE_COMMON_CHECK_H_

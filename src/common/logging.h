// Copyright 2026 The GraphRARE Authors.
//
// Minimal leveled logging to stderr. GR_LOG(INFO) << "..." style.
// The global level gates output; benches set it to WARNING to keep tables
// clean.

#ifndef GRAPHRARE_COMMON_LOGGING_H_
#define GRAPHRARE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace graphrare {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/' || *p == '\\') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

// Severity aliases so GR_LOG(INFO) reads like glog while the enum keeps
// Google-style kCamelCase enumerators.
inline constexpr LogLevel kLogSeverityDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogSeverityINFO = LogLevel::kInfo;
inline constexpr LogLevel kLogSeverityWARNING = LogLevel::kWarning;
inline constexpr LogLevel kLogSeverityERROR = LogLevel::kError;

}  // namespace internal

#define GR_LOG(severity)                                             \
  ::graphrare::internal::LogMessage(                                 \
      ::graphrare::internal::kLogSeverity##severity, __FILE__, __LINE__)

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_LOGGING_H_

#include "common/status.h"

namespace graphrare {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace graphrare

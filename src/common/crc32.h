// Copyright 2026 The GraphRARE Authors.
//
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the per-section
// checksum of the model-artifact format. Incremental: a running value can
// be fed chunk by chunk; 0 is the empty-input CRC.

#ifndef GRAPHRARE_COMMON_CRC32_H_
#define GRAPHRARE_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace graphrare {

class Crc32 {
 public:
  /// Extends a running CRC with `n` more bytes. Start from 0.
  static uint32_t Update(uint32_t crc, const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    crc = ~crc;
    const uint32_t* table = Table();
    for (size_t i = 0; i < n; ++i) {
      crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
    }
    return ~crc;
  }

  /// One-shot CRC of a buffer.
  static uint32_t Of(const void* data, size_t n) { return Update(0, data, n); }

 private:
  static const uint32_t* Table() {
    static const std::array<uint32_t, 256> table = [] {
      std::array<uint32_t, 256> t{};
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        t[i] = c;
      }
      return t;
    }();
    return table.data();
  }
};

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_CRC32_H_

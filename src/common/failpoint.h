// Copyright 2026 The GraphRARE Authors.
//
// Fail-point framework: named fault-injection sites compiled into the
// serving stack, switched on at runtime (tests, the chaos bench, or the
// GRAPHRARE_FAILPOINTS environment variable) and free when off — an
// unconfigured site costs one relaxed atomic load.
//
// A site is configured with a spec string:
//
//   spec  := [P%] [after(N)] [M*] action
//   action:= error(E) | eintr | short | delay(MS) | off
//
//   error(E)   fail the call with errno E (a name such as EIO/ENOSPC or a
//              number) without performing it
//   eintr      fail the call with EINTR — the interrupted-syscall storm
//   short      perform the call but halve the requested byte count — a
//              partial read/write
//   delay(MS)  sleep MS milliseconds, then perform the call
//   off        remove the site (same as Disable)
//
//   P%         fire with probability P (deterministic per-site stream;
//              see SetSeed), e.g. "1%eintr"
//   after(N)   let the first N evaluations pass untouched, e.g.
//              "after(2)error(ENOSPC)" fails the third write onward
//   M*         fire at most M times, then fall dormant, e.g. "3*eintr"
//
// Sites are plain strings; the serving tier uses "net.read", "net.write",
// "net.accept", "net.epoll_wait", "artifact.open", "artifact.read",
// "artifact.write", "artifact.fsync", "artifact.rename", "batcher.batch".
// Several sites are configured at once with "site=spec;site=spec".
//
// The syscall shims below are drop-in replacements for the raw calls with
// one leading site-name argument; call sites keep full responsibility for
// EINTR retries and partial-I/O handling — the whole point is that the
// injected faults exercise those paths.

#ifndef GRAPHRARE_COMMON_FAILPOINT_H_
#define GRAPHRARE_COMMON_FAILPOINT_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

struct epoll_event;
struct sockaddr;

namespace graphrare {
namespace failpoint {

/// What a Consult() decided for one call.
struct Action {
  enum class Kind { kNone, kError, kEintr, kShort, kDelay };
  Kind kind = Kind::kNone;
  int err = 0;       ///< errno injected by kError
  int delay_ms = 0;  ///< sleep injected by kDelay
};

namespace internal {
extern std::atomic<int> g_active_sites;
Action ConsultSlow(const char* site);
}  // namespace internal

/// True when at least one site is configured. The disabled-path cost of
/// every shim: one relaxed load.
inline bool AnyActive() {
  return internal::g_active_sites.load(std::memory_order_relaxed) != 0;
}

/// Evaluates `site` and consumes one hit when it fires. Returns kNone for
/// unconfigured sites, skipped evaluations (after/probability/M*), or when
/// the framework is globally idle.
inline Action Consult(const char* site) {
  if (!AnyActive()) return {};
  return internal::ConsultSlow(site);
}

/// Configures (or reconfigures) one site from a spec string (see the file
/// comment for the grammar). "off" removes the site.
Status Configure(const std::string& site, const std::string& spec);

/// Configures several sites from "site=spec;site=spec". Whitespace around
/// tokens is ignored; empty entries are skipped.
Status ConfigureFromList(const std::string& list);

/// Configures from the GRAPHRARE_FAILPOINTS environment variable, if set.
/// Returns the number of configured sites (0 when the variable is unset);
/// a malformed spec aborts via GR_CHECK so a typo cannot silently run a
/// chaos experiment with no faults.
int ConfigureFromEnv();

/// Removes one site / every site.
void Disable(const std::string& site);
void DisableAll();

/// Reseeds every site's probability stream (deterministic chaos runs).
void SetSeed(uint64_t seed);

/// How many times `site` has fired (actions actually taken).
int64_t Fired(const std::string& site);

/// Consults `site` and sleeps when the action is a delay; every other
/// action kind is ignored. For non-syscall sites (e.g. "batcher.batch").
void InjectDelay(const char* site);

// ---- Syscall shims --------------------------------------------------------
// Identical to the raw syscalls plus the leading site name. kError/kEintr
// set errno and return -1 without calling the kernel; kShort halves the
// byte count (reads and writes only); kDelay sleeps first.

ssize_t Read(const char* site, int fd, void* buf, size_t count);
ssize_t Write(const char* site, int fd, const void* buf, size_t count);
int Accept4(const char* site, int sockfd, struct sockaddr* addr,
            unsigned int* addrlen, int flags);
int EpollWait(const char* site, int epfd, struct epoll_event* events,
              int maxevents, int timeout_ms);
int Open(const char* site, const char* path, int flags, unsigned int mode);
int Fsync(const char* site, int fd);
int Rename(const char* site, const char* from, const char* to);

}  // namespace failpoint
}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_FAILPOINT_H_

// Copyright 2026 The GraphRARE Authors.
//
// Shared parallel-loop and deterministic-reduction primitives. Every OpenMP
// use in the hot paths (tensor kernels, neighbor sampling, batched
// inference) goes through these helpers so the repo's determinism contract
// lives in one place:
//
//   * ParallelFor / ParallelForDynamic — each chunk writes outputs that
//     depend only on its own indices, so any schedule and any thread count
//     produce identical results. Dynamic scheduling is for irregular
//     per-index cost (sampling hubs, mixed-size requests); static is for
//     uniform work (dense kernels).
//   * ParallelReduce — the reduction is defined over FIXED index blocks,
//     never over threads: [0, n) is split into ceil(n / block) blocks whose
//     boundaries depend only on n and block, partials are computed per
//     block (possibly concurrently) and combined in ascending block order.
//     The result is therefore bitwise identical for any OMP_NUM_THREADS and
//     for OpenMP-disabled builds.
//
// Passing grain >= n (or block >= n) forces the serial inline path, which
// is how call sites express "too small to be worth a team".

#ifndef GRAPHRARE_COMMON_PARALLEL_H_
#define GRAPHRARE_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace graphrare {

/// Runs body(begin, end) over disjoint chunks covering [0, n), each at most
/// `grain` long, with static scheduling. body must be pure per index: no
/// chunk may read state another chunk writes.
template <typename Body>
void ParallelFor(int64_t n, int64_t grain, Body&& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
#ifdef _OPENMP
  if (n > grain) {
    const int64_t chunks = (n + grain - 1) / grain;
#pragma omp parallel for schedule(static)
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t begin = c * grain;
      body(begin, std::min(n, begin + grain));
    }
    return;
  }
#endif
  body(0, n);
}

/// ParallelFor with dynamic scheduling: same purity contract and the same
/// results, but chunks are handed to threads on demand, which balances
/// irregular per-index cost (hub-node sampling, mixed-size serve requests).
template <typename Body>
void ParallelForDynamic(int64_t n, int64_t grain, Body&& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
#ifdef _OPENMP
  if (n > grain) {
    const int64_t chunks = (n + grain - 1) / grain;
#pragma omp parallel for schedule(dynamic, 1)
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t begin = c * grain;
      body(begin, std::min(n, begin + grain));
    }
    return;
  }
#endif
  body(0, n);
}

/// Deterministic fixed-block reduction over [0, n).
///
/// map(begin, end) -> T computes the partial for one block; combine(acc,
/// partial) -> T folds partials together. Blocks are [b*block, (b+1)*block)
/// regardless of thread count, and combine is applied in ascending block
/// order, so the result is a pure function of (n, block, map, combine) —
/// bitwise reproducible under any OMP_NUM_THREADS and in OpenMP-off builds.
/// Note the value may differ from a single-pass serial fold when combine is
/// a non-associative float accumulation: the fixed block structure *is* the
/// numeric spec callers commit to.
template <typename T, typename Map, typename Combine>
T ParallelReduce(int64_t n, int64_t block, T init, Map&& map,
                 Combine&& combine) {
  if (n <= 0) return init;
  if (block < 1) block = 1;
  const int64_t num_blocks = (n + block - 1) / block;
#ifdef _OPENMP
  if (num_blocks > 1) {
    // Blocks are processed in bounded windows so at most kMaxInFlight
    // partials are alive at once (a million-row reduction must not hold
    // thousands of partial tensors). Windowing changes only *when* a
    // partial is computed; the combine below still walks blocks in
    // ascending order, so the result is unchanged by the window size.
    constexpr int64_t kMaxInFlight = 64;
    T acc = std::move(init);
    std::vector<T> partials;
    for (int64_t w0 = 0; w0 < num_blocks; w0 += kMaxInFlight) {
      const int64_t w1 = std::min(num_blocks, w0 + kMaxInFlight);
      partials.clear();
      partials.resize(static_cast<size_t>(w1 - w0));
#pragma omp parallel for schedule(static)
      for (int64_t b = w0; b < w1; ++b) {
        const int64_t begin = b * block;
        partials[static_cast<size_t>(b - w0)] =
            map(begin, std::min(n, begin + block));
      }
      for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
    }
    return acc;
  }
#endif
  T acc = std::move(init);
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t begin = b * block;
    acc = combine(std::move(acc), map(begin, std::min(n, begin + block)));
  }
  return acc;
}

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_PARALLEL_H_

// Copyright 2026 The GraphRARE Authors.
//
// Result<T>: a Status or a value (StatusOr idiom).

#ifndef GRAPHRARE_COMMON_RESULT_H_
#define GRAPHRARE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace graphrare {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Accessing the value of an errored Result aborts (GR_CHECK), so
/// callers must test ok() first or use ValueOrDie() deliberately.
template <typename T>
class Result {
 public:
  /// Implicit from value (success path reads naturally: `return graph;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Constructing from an OK status is a
  /// programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    GR_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if !ok().
  const T& value() const& {
    GR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    GR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Explicit alias for call sites that intentionally assume success.
  T&& ValueOrDie() && { return std::move(*this).value(); }
  const T& ValueOrDie() const& { return value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, propagating errors (Arrow's ARROW_ASSIGN_OR_RAISE).
#define GR_ASSIGN_OR_RETURN(lhs, expr)              \
  auto GR_CONCAT_(_gr_result_, __LINE__) = (expr);  \
  if (!GR_CONCAT_(_gr_result_, __LINE__).ok())      \
    return GR_CONCAT_(_gr_result_, __LINE__).status(); \
  lhs = std::move(GR_CONCAT_(_gr_result_, __LINE__)).value()

#define GR_CONCAT_INNER_(a, b) a##b
#define GR_CONCAT_(a, b) GR_CONCAT_INNER_(a, b)

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_RESULT_H_

// Copyright 2026 The GraphRARE Authors.
//
// Line-oriented parsing helper for the text IO paths (graph/io, data/io).
// Tracks the 1-based line number so malformed input is reported as
// "'file' line N: ..." instead of failing silently mid-stream.

#ifndef GRAPHRARE_COMMON_LINE_READER_H_
#define GRAPHRARE_COMMON_LINE_READER_H_

#include <istream>
#include <sstream>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/string_util.h"

namespace graphrare {

/// Reads a stream one line at a time, remembering where it is. Every
/// physical line counts (none are skipped), so reported numbers match what
/// an editor shows.
class LineReader {
 public:
  /// The stream must outlive the reader; the path is copied.
  LineReader(std::istream* in, std::string path)
      : in_(in), path_(std::move(path)) {}

  /// Reads the next line into `*line`; false at EOF.
  bool Next(std::string* line) {
    if (!std::getline(*in_, *line)) return false;
    ++line_no_;
    return true;
  }

  /// Number of the last line handed out by Next (0 before the first).
  int64_t line_no() const { return line_no_; }

  /// InvalidArgument pinned to the current line.
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("'%s' line %lld: %s", path_.c_str(),
                  static_cast<long long>(line_no_), message.c_str()));
  }

  /// InvalidArgument for a file that stops short of a promised section.
  Status Truncated(const std::string& expected) const {
    return Status::InvalidArgument(StrFormat(
        "'%s': file ends at line %lld, expected %s", path_.c_str(),
        static_cast<long long>(line_no_), expected.c_str()));
  }

 private:
  std::istream* in_;
  std::string path_;
  int64_t line_no_ = 0;
};

/// Parses exactly two whitespace-separated integers with no trailing junk.
inline bool ParseIntPair(const std::string& line, int64_t* a, int64_t* b) {
  std::istringstream ss(line);
  std::string rest;
  return (ss >> *a >> *b) && !(ss >> rest);
}

}  // namespace graphrare

#endif  // GRAPHRARE_COMMON_LINE_READER_H_

#include "common/failpoint.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/string_util.h"

namespace graphrare {
namespace failpoint {

namespace internal {
std::atomic<int> g_active_sites{0};
}  // namespace internal

namespace {

struct SiteConfig {
  Action action;
  double probability = 1.0;  ///< chance each eligible evaluation fires
  int64_t skip_first = 0;    ///< evaluations to let pass before arming
  int64_t max_hits = -1;     ///< -1 = unlimited
  int64_t evaluations = 0;
  int64_t fired = 0;
  uint64_t rng_state = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteConfig> sites;
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: shims run at any time
  return *r;
}

uint64_t HashSite(const std::string& site) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// splitmix64 step; uniform in [0, 1).
double NextUniform(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool ParseErrno(const std::string& name, int* err) {
  static const std::unordered_map<std::string, int> kNames = {
      {"EIO", EIO},         {"ENOSPC", ENOSPC},   {"EBADF", EBADF},
      {"EMFILE", EMFILE},   {"ENFILE", ENFILE},   {"EACCES", EACCES},
      {"ENOENT", ENOENT},   {"EAGAIN", EAGAIN},   {"EPIPE", EPIPE},
      {"ECONNRESET", ECONNRESET}, {"EINTR", EINTR}, {"EINVAL", EINVAL},
  };
  const auto it = kNames.find(name);
  if (it != kNames.end()) {
    *err = it->second;
    return true;
  }
  char* end = nullptr;
  const long v = std::strtol(name.c_str(), &end, 10);
  if (end == name.c_str() || *end != '\0' || v <= 0) return false;
  *err = static_cast<int>(v);
  return true;
}

/// Parses the spec grammar (see failpoint.h). Returns the config or an
/// error; "off" maps to kNone with probability 0 and is handled upstream.
Status ParseSpec(const std::string& raw, SiteConfig* out) {
  std::string spec;
  for (const char c : raw) {
    if (!std::isspace(static_cast<unsigned char>(c))) spec += c;
  }
  SiteConfig cfg;
  size_t pos = 0;

  // [P%]
  const size_t pct = spec.find('%');
  if (pct != std::string::npos && pct > 0 &&
      spec.find_first_not_of("0123456789.", 0) == pct) {
    const double p = std::atof(spec.substr(0, pct).c_str());
    if (p <= 0.0 || p > 100.0) {
      return Status::InvalidArgument(
          StrFormat("failpoint probability out of (0, 100]: '%s'",
                    raw.c_str()));
    }
    cfg.probability = p / 100.0;
    pos = pct + 1;
  }

  // [after(N)]
  if (spec.compare(pos, 6, "after(") == 0) {
    const size_t close = spec.find(')', pos);
    if (close == std::string::npos) {
      return Status::InvalidArgument("failpoint: unclosed after(): " + raw);
    }
    cfg.skip_first = std::atoll(spec.substr(pos + 6, close - pos - 6).c_str());
    if (cfg.skip_first < 0) {
      return Status::InvalidArgument("failpoint: negative after(): " + raw);
    }
    pos = close + 1;
  }

  // [M*]
  const size_t star = spec.find('*', pos);
  if (star != std::string::npos &&
      spec.find_first_not_of("0123456789", pos) == star) {
    cfg.max_hits = std::atoll(spec.substr(pos, star - pos).c_str());
    if (cfg.max_hits < 1) {
      return Status::InvalidArgument("failpoint: bad hit count: " + raw);
    }
    pos = star + 1;
  }

  // action [(arg)]
  std::string kind = spec.substr(pos);
  std::string arg;
  const size_t paren = kind.find('(');
  if (paren != std::string::npos) {
    if (kind.back() != ')') {
      return Status::InvalidArgument("failpoint: unclosed argument: " + raw);
    }
    arg = kind.substr(paren + 1, kind.size() - paren - 2);
    kind = kind.substr(0, paren);
  }
  if (kind == "error") {
    cfg.action.kind = Action::Kind::kError;
    if (!ParseErrno(arg, &cfg.action.err)) {
      return Status::InvalidArgument(
          StrFormat("failpoint: unknown errno '%s' in '%s'", arg.c_str(),
                    raw.c_str()));
    }
  } else if (kind == "eintr") {
    cfg.action.kind = Action::Kind::kEintr;
  } else if (kind == "short") {
    cfg.action.kind = Action::Kind::kShort;
  } else if (kind == "delay") {
    cfg.action.kind = Action::Kind::kDelay;
    cfg.action.delay_ms = std::atoi(arg.c_str());
    if (cfg.action.delay_ms < 0) {
      return Status::InvalidArgument("failpoint: negative delay: " + raw);
    }
  } else {
    return Status::InvalidArgument(
        StrFormat("failpoint: unknown action '%s' in '%s'", kind.c_str(),
                  raw.c_str()));
  }
  *out = cfg;
  return Status::OK();
}

}  // namespace

namespace internal {

Action ConsultSlow(const char* site) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return {};
  SiteConfig& cfg = it->second;
  ++cfg.evaluations;
  if (cfg.evaluations <= cfg.skip_first) return {};
  if (cfg.max_hits >= 0 && cfg.fired >= cfg.max_hits) return {};
  if (cfg.probability < 1.0 &&
      NextUniform(&cfg.rng_state) >= cfg.probability) {
    return {};
  }
  ++cfg.fired;
  return cfg.action;
}

}  // namespace internal

Status Configure(const std::string& site, const std::string& spec) {
  if (site.empty()) {
    return Status::InvalidArgument("failpoint: empty site name");
  }
  if (spec == "off") {
    Disable(site);
    return Status::OK();
  }
  SiteConfig cfg;
  GR_RETURN_IF_ERROR(ParseSpec(spec, &cfg));
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  cfg.rng_state = reg.seed ^ HashSite(site);
  reg.sites[site] = cfg;
  internal::g_active_sites.store(static_cast<int>(reg.sites.size()),
                                 std::memory_order_relaxed);
  return Status::OK();
}

Status ConfigureFromList(const std::string& list) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t end = list.find(';', start);
    if (end == std::string::npos) end = list.size();
    const std::string entry = list.substr(start, end - start);
    start = end + 1;
    if (entry.find_first_not_of(" \t") == std::string::npos) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "failpoint: entry without '=': " + entry);
    }
    std::string site = entry.substr(0, eq);
    while (!site.empty() && std::isspace(static_cast<unsigned char>(
                                site.front()))) {
      site.erase(0, 1);
    }
    while (!site.empty() &&
           std::isspace(static_cast<unsigned char>(site.back()))) {
      site.pop_back();
    }
    GR_RETURN_IF_ERROR(Configure(site, entry.substr(eq + 1)));
  }
  return Status::OK();
}

int ConfigureFromEnv() {
  const char* env = std::getenv("GRAPHRARE_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  const Status s = ConfigureFromList(env);
  GR_CHECK(s.ok()) << "GRAPHRARE_FAILPOINTS: " << s.ToString();
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return static_cast<int>(reg.sites.size());
}

void Disable(const std::string& site) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.erase(site);
  internal::g_active_sites.store(static_cast<int>(reg.sites.size()),
                                 std::memory_order_relaxed);
}

void DisableAll() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.clear();
  internal::g_active_sites.store(0, std::memory_order_relaxed);
}

void SetSeed(uint64_t seed) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.seed = seed;
  for (auto& [site, cfg] : reg.sites) {
    cfg.rng_state = seed ^ HashSite(site);
  }
}

int64_t Fired(const std::string& site) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fired;
}

namespace {

void SleepMs(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Applies the non-performing actions; returns true when the caller must
/// return -1 with errno already set. kShort clamps *count (when allowed);
/// kDelay sleeps.
bool PreCall(const char* site, bool can_shorten, size_t* count) {
  const Action a = Consult(site);
  switch (a.kind) {
    case Action::Kind::kNone:
      return false;
    case Action::Kind::kError:
      errno = a.err;
      return true;
    case Action::Kind::kEintr:
      errno = EINTR;
      return true;
    case Action::Kind::kShort:
      if (can_shorten && count != nullptr && *count > 1) {
        *count = (*count + 1) / 2;
      }
      return false;
    case Action::Kind::kDelay:
      SleepMs(a.delay_ms);
      return false;
  }
  return false;
}

}  // namespace

void InjectDelay(const char* site) {
  const Action a = Consult(site);
  if (a.kind == Action::Kind::kDelay) SleepMs(a.delay_ms);
}

ssize_t Read(const char* site, int fd, void* buf, size_t count) {
  if (AnyActive() && PreCall(site, /*can_shorten=*/true, &count)) return -1;
  return ::read(fd, buf, count);
}

ssize_t Write(const char* site, int fd, const void* buf, size_t count) {
  if (AnyActive() && PreCall(site, /*can_shorten=*/true, &count)) return -1;
  return ::write(fd, buf, count);
}

int Accept4(const char* site, int sockfd, struct sockaddr* addr,
            unsigned int* addrlen, int flags) {
  if (AnyActive() && PreCall(site, /*can_shorten=*/false, nullptr)) return -1;
  return ::accept4(sockfd, addr, addrlen, flags);
}

int EpollWait(const char* site, int epfd, struct epoll_event* events,
              int maxevents, int timeout_ms) {
  if (AnyActive() && PreCall(site, /*can_shorten=*/false, nullptr)) return -1;
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}

int Open(const char* site, const char* path, int flags, unsigned int mode) {
  if (AnyActive() && PreCall(site, /*can_shorten=*/false, nullptr)) return -1;
  return ::open(path, flags, static_cast<mode_t>(mode));
}

int Fsync(const char* site, int fd) {
  if (AnyActive() && PreCall(site, /*can_shorten=*/false, nullptr)) return -1;
  return ::fsync(fd);
}

int Rename(const char* site, const char* from, const char* to) {
  if (AnyActive() && PreCall(site, /*can_shorten=*/false, nullptr)) return -1;
  return ::rename(from, to);
}

}  // namespace failpoint
}  // namespace graphrare
